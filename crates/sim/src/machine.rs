//! The simulated machine: cores, speeds, and affinity masks.

use crate::work::Speed;
use std::fmt;

/// Identifies a core within a [`MachineSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// A set of cores a thread may run on, as a bitmask (the process-affinity
/// API the paper uses to pin DB2 server processes and Zeus event loops).
///
/// # Examples
///
/// ```
/// use asym_sim::{CoreId, CoreMask};
///
/// let mask = CoreMask::single(CoreId(2));
/// assert!(mask.contains(CoreId(2)));
/// assert!(!mask.contains(CoreId(0)));
/// assert!(CoreMask::ALL.contains(CoreId(63)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreMask(u64);

impl CoreMask {
    /// All cores allowed (the default for unpinned threads).
    pub const ALL: CoreMask = CoreMask(u64::MAX);

    /// A mask allowing only `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core.0 >= 64`.
    pub fn single(core: CoreId) -> Self {
        assert!(core.0 < 64, "core index {} exceeds mask width", core.0);
        CoreMask(1 << core.0)
    }

    /// A mask built from an iterator of cores.
    ///
    /// # Panics
    ///
    /// Panics if any core index is 64 or larger.
    pub fn from_cores<I: IntoIterator<Item = CoreId>>(cores: I) -> Self {
        let mut mask = 0u64;
        for c in cores {
            assert!(c.0 < 64, "core index {} exceeds mask width", c.0);
            mask |= 1 << c.0;
        }
        CoreMask(mask)
    }

    /// The raw 64-bit representation (bit *i* set ⇔ core *i* allowed).
    /// Round-trips through [`CoreMask::from_bits`]; used by compact
    /// trace encoders that need a stable wire form for affinity masks.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Rebuilds a mask from its [`bits`](CoreMask::bits) representation.
    pub fn from_bits(bits: u64) -> Self {
        CoreMask(bits)
    }

    /// Returns `true` if `core` is in the mask.
    pub fn contains(self, core: CoreId) -> bool {
        core.0 < 64 && self.0 & (1 << core.0) != 0
    }

    /// Returns `true` if no core is allowed (an unschedulable mask).
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the cores of the mask that exist on a machine with
    /// `num_cores` cores, in index order.
    pub fn cores_on(self, num_cores: usize) -> impl Iterator<Item = CoreId> {
        (0..num_cores.min(64))
            .map(CoreId)
            .filter(move |c| self.contains(*c))
    }
}

impl Default for CoreMask {
    fn default() -> Self {
        CoreMask::ALL
    }
}

impl fmt::Display for CoreMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Describes the cores of a simulated machine.
///
/// # Examples
///
/// ```
/// use asym_sim::{MachineSpec, Speed};
///
/// // The paper's 2f-2s/8: two fast cores, two at 1/8 speed.
/// let spec = MachineSpec::asymmetric(2, 2, Speed::fraction_of_full(8));
/// assert_eq!(spec.num_cores(), 4);
/// assert_eq!(spec.total_compute_power(), 2.25);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    speeds: Vec<Speed>,
}

impl MachineSpec {
    /// A machine whose core speeds are given explicitly, fast cores first by
    /// convention.
    ///
    /// # Panics
    ///
    /// Panics if `speeds` is empty or has more than 64 cores (see
    /// [`MachineSpec::try_new`] for the non-panicking form).
    pub fn new(speeds: Vec<Speed>) -> Self {
        match MachineSpec::try_new(speeds) {
            Ok(spec) => spec,
            Err(e) => panic!("invalid machine: {e}"),
        }
    }

    /// A machine whose core speeds are given explicitly, reporting invalid
    /// shapes as an error instead of panicking.
    ///
    /// A machine must have at least one core and at most 64 (the width of
    /// [`CoreMask`] — more cores would silently fall outside every affinity
    /// mask and never be scheduled).
    ///
    /// # Errors
    ///
    /// Returns [`MachineSpecError`] if `speeds` is empty or longer than 64.
    pub fn try_new(speeds: Vec<Speed>) -> Result<Self, MachineSpecError> {
        if speeds.is_empty() {
            return Err(MachineSpecError::NoCores);
        }
        if speeds.len() > 64 {
            return Err(MachineSpecError::TooManyCores {
                requested: speeds.len(),
            });
        }
        Ok(MachineSpec { speeds })
    }

    /// A performance-symmetric machine of `n` cores at `speed`.
    pub fn symmetric(n: usize, speed: Speed) -> Self {
        MachineSpec::new(vec![speed; n])
    }

    /// The paper's `nf-ms/scale` style machine: `fast` full-speed cores
    /// followed by `slow` cores at `slow_speed`.
    pub fn asymmetric(fast: usize, slow: usize, slow_speed: Speed) -> Self {
        let mut speeds = vec![Speed::FULL; fast];
        speeds.extend(std::iter::repeat_n(slow_speed, slow));
        MachineSpec::new(speeds)
    }

    /// The number of cores.
    pub fn num_cores(&self) -> usize {
        self.speeds.len()
    }

    /// The speed of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn speed(&self, core: CoreId) -> Speed {
        self.speeds[core.0]
    }

    /// Changes the speed of `core` — the dynamic-asymmetry case (thermal
    /// throttling, DVFS, duty-cycle re-modulation) injected by a fault
    /// plan mid-run.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn set_speed(&mut self, core: CoreId, speed: Speed) {
        self.speeds[core.0] = speed;
    }

    /// All core speeds, indexed by core.
    pub fn speeds(&self) -> &[Speed] {
        &self.speeds
    }

    /// Iterates over `(core, speed)` pairs.
    pub fn cores(&self) -> impl Iterator<Item = (CoreId, Speed)> + '_ {
        self.speeds.iter().enumerate().map(|(i, s)| (CoreId(i), *s))
    }

    /// The sum of speed factors — the paper's "total compute power"
    /// `n + m/scale`.
    pub fn total_compute_power(&self) -> f64 {
        self.speeds.iter().map(|s| s.factor()).sum()
    }

    /// Returns `true` when every core runs at the same speed.
    pub fn is_symmetric(&self) -> bool {
        self.speeds.windows(2).all(|w| w[0] == w[1])
    }

    /// The fastest core speed on the machine.
    pub fn max_speed(&self) -> Speed {
        *self.speeds.iter().max().expect("machine has cores")
    }

    /// The slowest core speed on the machine.
    pub fn min_speed(&self) -> Speed {
        *self.speeds.iter().min().expect("machine has cores")
    }
}

/// Error returned by [`MachineSpec::try_new`] for a machine shape the
/// simulator cannot schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineSpecError {
    /// The speed list was empty — a machine needs at least one core.
    NoCores,
    /// More cores than [`CoreMask`] can address: the extras would fall
    /// outside every affinity mask and silently never run.
    TooManyCores {
        /// The number of cores requested.
        requested: usize,
    },
}

impl fmt::Display for MachineSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineSpecError::NoCores => write!(f, "a machine needs at least one core"),
            MachineSpecError::TooManyCores { requested } => write!(
                f,
                "at most 64 cores are supported (affinity masks are 64 bits wide), got {requested}"
            ),
        }
    }
}

impl std::error::Error for MachineSpecError {}

impl fmt::Display for MachineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.speeds.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asymmetric_machine_power() {
        let m = MachineSpec::asymmetric(3, 1, Speed::fraction_of_full(4));
        assert_eq!(m.num_cores(), 4);
        assert_eq!(m.total_compute_power(), 3.25);
        assert!(!m.is_symmetric());
        assert_eq!(m.max_speed(), Speed::FULL);
        assert_eq!(m.min_speed(), Speed::fraction_of_full(4));
    }

    #[test]
    fn symmetric_machine_detected() {
        let m = MachineSpec::symmetric(4, Speed::fraction_of_full(8));
        assert!(m.is_symmetric());
        assert_eq!(m.total_compute_power(), 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_machine_rejected() {
        let _ = MachineSpec::new(vec![]);
    }

    #[test]
    fn try_new_reports_invalid_shapes() {
        assert_eq!(MachineSpec::try_new(vec![]), Err(MachineSpecError::NoCores));
        assert_eq!(
            MachineSpec::try_new(vec![Speed::FULL; 65]),
            Err(MachineSpecError::TooManyCores { requested: 65 })
        );
        let ok = MachineSpec::try_new(vec![Speed::FULL; 64]).unwrap();
        assert_eq!(ok.num_cores(), 64);
    }

    #[test]
    #[should_panic(expected = "at most 64 cores")]
    fn oversized_machine_rejected() {
        let _ = MachineSpec::symmetric(65, Speed::FULL);
    }

    #[test]
    fn set_speed_changes_one_core() {
        let mut m = MachineSpec::symmetric(2, Speed::FULL);
        m.set_speed(CoreId(1), Speed::fraction_of_full(8));
        assert_eq!(m.speed(CoreId(0)), Speed::FULL);
        assert_eq!(m.speed(CoreId(1)), Speed::fraction_of_full(8));
        assert!(!m.is_symmetric());
    }

    #[test]
    fn mask_membership() {
        let mask = CoreMask::from_cores([CoreId(0), CoreId(3)]);
        assert!(mask.contains(CoreId(0)));
        assert!(!mask.contains(CoreId(1)));
        assert!(mask.contains(CoreId(3)));
        let cores: Vec<usize> = mask.cores_on(4).map(|c| c.0).collect();
        assert_eq!(cores, vec![0, 3]);
    }

    #[test]
    fn empty_mask() {
        let mask = CoreMask::from_cores(std::iter::empty());
        assert!(mask.is_empty());
        assert_eq!(mask.cores_on(4).count(), 0);
    }

    #[test]
    fn fast_cores_come_first() {
        let m = MachineSpec::asymmetric(1, 3, Speed::fraction_of_full(8));
        assert_eq!(m.speed(CoreId(0)), Speed::FULL);
        for i in 1..4 {
            assert_eq!(m.speed(CoreId(i)), Speed::fraction_of_full(8));
        }
    }
}
