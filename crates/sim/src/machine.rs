//! The simulated machine: cores, speeds, and affinity masks.

use crate::work::Speed;
use std::fmt;

/// Identifies a core within a [`MachineSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// A set of cores a thread may run on, as a bitmask (the process-affinity
/// API the paper uses to pin DB2 server processes and Zeus event loops).
///
/// # Examples
///
/// ```
/// use asym_sim::{CoreId, CoreMask};
///
/// let mask = CoreMask::single(CoreId(2));
/// assert!(mask.contains(CoreId(2)));
/// assert!(!mask.contains(CoreId(0)));
/// assert!(CoreMask::ALL.contains(CoreId(63)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreMask(u64);

impl CoreMask {
    /// All cores allowed (the default for unpinned threads).
    pub const ALL: CoreMask = CoreMask(u64::MAX);

    /// A mask allowing only `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core.0 >= 64`.
    pub fn single(core: CoreId) -> Self {
        assert!(core.0 < 64, "core index {} exceeds mask width", core.0);
        CoreMask(1 << core.0)
    }

    /// A mask built from an iterator of cores.
    ///
    /// # Panics
    ///
    /// Panics if any core index is 64 or larger.
    pub fn from_cores<I: IntoIterator<Item = CoreId>>(cores: I) -> Self {
        let mut mask = 0u64;
        for c in cores {
            assert!(c.0 < 64, "core index {} exceeds mask width", c.0);
            mask |= 1 << c.0;
        }
        CoreMask(mask)
    }

    /// Returns `true` if `core` is in the mask.
    pub fn contains(self, core: CoreId) -> bool {
        core.0 < 64 && self.0 & (1 << core.0) != 0
    }

    /// Returns `true` if no core is allowed (an unschedulable mask).
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the cores of the mask that exist on a machine with
    /// `num_cores` cores, in index order.
    pub fn cores_on(self, num_cores: usize) -> impl Iterator<Item = CoreId> {
        (0..num_cores.min(64))
            .map(CoreId)
            .filter(move |c| self.contains(*c))
    }
}

impl Default for CoreMask {
    fn default() -> Self {
        CoreMask::ALL
    }
}

impl fmt::Display for CoreMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Describes the cores of a simulated machine.
///
/// # Examples
///
/// ```
/// use asym_sim::{MachineSpec, Speed};
///
/// // The paper's 2f-2s/8: two fast cores, two at 1/8 speed.
/// let spec = MachineSpec::asymmetric(2, 2, Speed::fraction_of_full(8));
/// assert_eq!(spec.num_cores(), 4);
/// assert_eq!(spec.total_compute_power(), 2.25);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    speeds: Vec<Speed>,
}

impl MachineSpec {
    /// A machine whose core speeds are given explicitly, fast cores first by
    /// convention.
    ///
    /// # Panics
    ///
    /// Panics if `speeds` is empty or has more than 64 cores.
    pub fn new(speeds: Vec<Speed>) -> Self {
        assert!(!speeds.is_empty(), "a machine needs at least one core");
        assert!(speeds.len() <= 64, "at most 64 cores are supported");
        MachineSpec { speeds }
    }

    /// A performance-symmetric machine of `n` cores at `speed`.
    pub fn symmetric(n: usize, speed: Speed) -> Self {
        MachineSpec::new(vec![speed; n])
    }

    /// The paper's `nf-ms/scale` style machine: `fast` full-speed cores
    /// followed by `slow` cores at `slow_speed`.
    pub fn asymmetric(fast: usize, slow: usize, slow_speed: Speed) -> Self {
        let mut speeds = vec![Speed::FULL; fast];
        speeds.extend(std::iter::repeat_n(slow_speed, slow));
        MachineSpec::new(speeds)
    }

    /// The number of cores.
    pub fn num_cores(&self) -> usize {
        self.speeds.len()
    }

    /// The speed of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn speed(&self, core: CoreId) -> Speed {
        self.speeds[core.0]
    }

    /// All core speeds, indexed by core.
    pub fn speeds(&self) -> &[Speed] {
        &self.speeds
    }

    /// Iterates over `(core, speed)` pairs.
    pub fn cores(&self) -> impl Iterator<Item = (CoreId, Speed)> + '_ {
        self.speeds.iter().enumerate().map(|(i, s)| (CoreId(i), *s))
    }

    /// The sum of speed factors — the paper's "total compute power"
    /// `n + m/scale`.
    pub fn total_compute_power(&self) -> f64 {
        self.speeds.iter().map(|s| s.factor()).sum()
    }

    /// Returns `true` when every core runs at the same speed.
    pub fn is_symmetric(&self) -> bool {
        self.speeds.windows(2).all(|w| w[0] == w[1])
    }

    /// The fastest core speed on the machine.
    pub fn max_speed(&self) -> Speed {
        *self.speeds.iter().max().expect("machine has cores")
    }

    /// The slowest core speed on the machine.
    pub fn min_speed(&self) -> Speed {
        *self.speeds.iter().min().expect("machine has cores")
    }
}

impl fmt::Display for MachineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.speeds.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asymmetric_machine_power() {
        let m = MachineSpec::asymmetric(3, 1, Speed::fraction_of_full(4));
        assert_eq!(m.num_cores(), 4);
        assert_eq!(m.total_compute_power(), 3.25);
        assert!(!m.is_symmetric());
        assert_eq!(m.max_speed(), Speed::FULL);
        assert_eq!(m.min_speed(), Speed::fraction_of_full(4));
    }

    #[test]
    fn symmetric_machine_detected() {
        let m = MachineSpec::symmetric(4, Speed::fraction_of_full(8));
        assert!(m.is_symmetric());
        assert_eq!(m.total_compute_power(), 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_machine_rejected() {
        let _ = MachineSpec::new(vec![]);
    }

    #[test]
    fn mask_membership() {
        let mask = CoreMask::from_cores([CoreId(0), CoreId(3)]);
        assert!(mask.contains(CoreId(0)));
        assert!(!mask.contains(CoreId(1)));
        assert!(mask.contains(CoreId(3)));
        let cores: Vec<usize> = mask.cores_on(4).map(|c| c.0).collect();
        assert_eq!(cores, vec![0, 3]);
    }

    #[test]
    fn empty_mask() {
        let mask = CoreMask::from_cores(std::iter::empty());
        assert!(mask.is_empty());
        assert_eq!(mask.cores_on(4).count(), 0);
    }

    #[test]
    fn fast_cores_come_first() {
        let m = MachineSpec::asymmetric(1, 3, Speed::fraction_of_full(8));
        assert_eq!(m.speed(CoreId(0)), Speed::FULL);
        for i in 1..4 {
            assert_eq!(m.speed(CoreId(i)), Speed::fraction_of_full(8));
        }
    }
}
