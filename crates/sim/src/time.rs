//! Simulated time.
//!
//! All simulated time in this workspace is expressed as [`SimTime`], a
//! nanosecond-granularity instant, and [`SimDuration`], a nanosecond span.
//! Using newtypes (rather than bare `u64`) keeps instants, spans, and cycle
//! counts from being confused with one another (C-NEWTYPE).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in nanoseconds from simulation
/// start.
///
/// # Examples
///
/// ```
/// use asym_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Returns the instant as nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as (fractional) seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is later than self"),
        )
    }

    /// Saturating version of [`SimTime::duration_since`]: returns zero when
    /// `earlier` is later than `self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

/// A span of simulated time, measured in nanoseconds.
///
/// # Examples
///
/// ```
/// use asym_sim::SimDuration;
///
/// let slice = SimDuration::from_millis(1);
/// assert_eq!(slice * 4, SimDuration::from_millis(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span of fractional seconds, rounding to whole nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Returns the span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns `true` if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_arithmetic_round_trips() {
        let t = SimTime::from_nanos(500);
        let d = SimDuration::from_nanos(200);
        assert_eq!((t + d).as_nanos(), 700);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).duration_since(t), d);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "earlier instant is later")]
    fn duration_since_panics_when_reversed() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::ZERO < SimTime::from_nanos(1));
        assert_eq!(SimTime::from_nanos(1_500_000_000).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250000s");
    }

    #[test]
    fn min_max_duration() {
        let a = SimDuration::from_nanos(3);
        let b = SimDuration::from_nanos(7);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!a.is_zero());
    }
}
