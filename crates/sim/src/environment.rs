//! Continuous environment models: deterministic, seed-derived timelines
//! of per-core speed trajectories.
//!
//! [`FaultPlan`](crate::FaultPlan) models asymmetry that changes at
//! discrete, precomputed instants. Real machines drift *continuously*:
//! DVFS governors walk frequency ladders in response to utilization,
//! silicon heats while busy and throttles past a cap, and co-tenant
//! virtual machines steal cycles in bursts. An [`EnvironmentPlan`]
//! captures such a regime as plain data — ladder shapes, thermal
//! constants, and a seed-derived burst schedule — and an
//! [`EnvironmentState`] evaluates it tick by tick against observed
//! per-core busyness, producing quantized duty-cycle targets.
//!
//! Determinism contract: the plan is a pure function of
//! `(seed, num_cores, profile)`, and the state's tick outputs are a pure
//! function of the plan, the base speeds, and the busy samples fed in.
//! Two identically seeded runs observing identical schedules therefore
//! see identical environments.
//!
//! The kernel owns *when* targets are applied (hysteresis and bounded-
//! rate re-ranking live there); this module owns *what* the environment
//! wants each core's speed to be at each tick.
//!
//! # Examples
//!
//! ```
//! use asym_sim::{EnvironmentPlan, EnvironmentProfile, SimDuration};
//!
//! let profile = EnvironmentProfile::co_tenant(SimDuration::from_secs(2));
//! let plan = EnvironmentPlan::generate(42, 4, &profile);
//! assert_eq!(plan, EnvironmentPlan::generate(42, 4, &profile)); // pure in the seed
//! assert!(!plan.is_static());
//! ```

use crate::machine::CoreId;
use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};
use crate::work::{DutyCycle, Speed};
use std::fmt;

/// DVFS governor parameters: a stepwise duty-cycle ladder driven by
/// sampled utilization, one governor per core.
///
/// The governor idles *down*: after [`down_ticks`](Self::down_ticks)
/// consecutive idle samples the core descends one duty step (saving
/// power), down to at most [`floor_steps`](Self::floor_steps) below its
/// base duty; after [`up_ticks`](Self::up_ticks) consecutive busy
/// samples it climbs one step back toward base. A core that ramps down
/// and is then handed work runs *slow until the governor catches up* —
/// exactly the dynamic-asymmetry hazard the scheduler must track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DvfsParams {
    /// Consecutive busy ticks required before stepping one duty step up.
    pub up_ticks: u32,
    /// Consecutive idle ticks required before stepping one duty step
    /// down.
    pub down_ticks: u32,
    /// Maximum duty steps the governor may descend below the core's
    /// base duty.
    pub floor_steps: u8,
}

/// Thermal model parameters: integer heat accumulation while busy,
/// recovery while idle, and a throttle curve past the cap.
///
/// Heat is a per-core integer. Every busy tick adds
/// [`heat_per_busy_tick`](Self::heat_per_busy_tick); every idle tick
/// removes [`cool_per_idle_tick`](Self::cool_per_idle_tick) (floored at
/// zero). While heat exceeds [`throttle_at`](Self::throttle_at), the
/// core is throttled by one duty step per
/// [`steps_per_excess`](Self::steps_per_excess) units of excess heat —
/// a piecewise-linear throttle curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThermalParams {
    /// Heat units added per busy tick.
    pub heat_per_busy_tick: u32,
    /// Heat units removed per idle tick.
    pub cool_per_idle_tick: u32,
    /// Heat threshold above which throttling begins.
    pub throttle_at: u32,
    /// Excess heat units per duty step of throttle (must be nonzero).
    pub steps_per_excess: u32,
}

/// One co-tenant interference burst: while active, the victim core's
/// effective duty is dilated to `dilation` eighths of its undisturbed
/// value (a co-scheduled tenant stealing cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BurstRecord {
    /// When the burst begins.
    pub start: SimTime,
    /// When the burst ends (exclusive).
    pub end: SimTime,
    /// The core the co-tenant lands on.
    pub core: CoreId,
    /// Remaining share of the victim's duty while the burst is active.
    pub dilation: DutyCycle,
}

/// Errors from [`EnvironmentPlan::generate`] parameter validation —
/// the environment analogue of
/// [`MachineSpecError`](crate::MachineSpecError).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvironmentError {
    /// The profile's tick period was zero.
    ZeroTick,
    /// The machine has no cores to model.
    NoCores,
    /// The thermal throttle curve divides by `steps_per_excess = 0`.
    ZeroThrottleCurve,
}

impl fmt::Display for EnvironmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvironmentError::ZeroTick => write!(f, "environment tick period must be nonzero"),
            EnvironmentError::NoCores => write!(f, "environment needs at least one core"),
            EnvironmentError::ZeroThrottleCurve => {
                write!(f, "thermal steps_per_excess must be nonzero")
            }
        }
    }
}

impl std::error::Error for EnvironmentError {}

/// A deterministic dynamic-environment regime: tick period, optional
/// DVFS and thermal components, and a precomputed co-tenant burst
/// schedule.
///
/// Plans are plain data, derived once per run by
/// [`EnvironmentPlan::generate`] and evaluated by an
/// [`EnvironmentState`]. They compose freely with a
/// [`FaultPlan`](crate::FaultPlan): faults fire at their instants, the
/// environment re-targets at every tick, and both funnel through the
/// kernel's single mid-run speed-change path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnvironmentPlan {
    /// Evaluation period: the kernel samples busyness and re-targets
    /// speeds once per tick.
    tick: SimDuration,
    /// DVFS governor, if the regime has one.
    dvfs: Option<DvfsParams>,
    /// Thermal model, if the regime has one.
    thermal: Option<ThermalParams>,
    /// Seed-derived co-tenant bursts, sorted by start time.
    bursts: Vec<BurstRecord>,
}

impl EnvironmentPlan {
    /// An empty plan: no components, never changes any speed.
    pub fn new() -> Self {
        EnvironmentPlan::default()
    }

    /// The evaluation tick period ([`SimDuration::ZERO`] for an empty
    /// plan, meaning "never tick").
    pub fn tick_period(&self) -> SimDuration {
        self.tick
    }

    /// `true` when the plan can never change a speed (no components).
    pub fn is_static(&self) -> bool {
        self.dvfs.is_none() && self.thermal.is_none() && self.bursts.is_empty()
    }

    /// The precomputed co-tenant bursts, sorted by start time.
    pub fn bursts(&self) -> &[BurstRecord] {
        &self.bursts
    }

    /// Derives a plan from `seed` for a machine with `num_cores` cores.
    ///
    /// The plan is a pure function of `(seed, num_cores, profile)`: the
    /// DVFS and thermal components copy the profile's parameters
    /// verbatim (their dynamics come from runtime busy feedback), and
    /// the co-tenant component draws `profile.bursts` bursts with
    /// seed-derived start time, duration, victim core, and dilation
    /// inside the horizon.
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid; use
    /// [`EnvironmentPlan::try_generate`] for a fallible version.
    pub fn generate(seed: u64, num_cores: usize, profile: &EnvironmentProfile) -> EnvironmentPlan {
        EnvironmentPlan::try_generate(seed, num_cores, profile)
            .unwrap_or_else(|e| panic!("invalid environment profile: {e}"))
    }

    /// Fallible [`EnvironmentPlan::generate`]: validates the profile
    /// instead of panicking.
    pub fn try_generate(
        seed: u64,
        num_cores: usize,
        profile: &EnvironmentProfile,
    ) -> Result<EnvironmentPlan, EnvironmentError> {
        if num_cores == 0 {
            return Err(EnvironmentError::NoCores);
        }
        if profile.tick.is_zero() {
            return Err(EnvironmentError::ZeroTick);
        }
        if let Some(t) = &profile.thermal {
            if t.steps_per_excess == 0 {
                return Err(EnvironmentError::ZeroThrottleCurve);
            }
        }
        let mut rng = Rng::new(seed ^ 0xe271_e271_e271_e271);
        let horizon = profile.horizon.as_nanos().max(1);
        let mut bursts = Vec::with_capacity(profile.bursts as usize);
        for _ in 0..profile.bursts {
            let start = rng.below(horizon);
            // Bursts last between 1/64 and 1/8 of the horizon, clipped
            // to it, so several can overlap on different victims but
            // none outlives the window.
            let len = horizon / 64 + rng.below((horizon / 8).max(1));
            let end = (start + len.max(1)).min(horizon);
            let core = CoreId(rng.index(num_cores));
            // Dilation between 1/8 and 6/8 of the victim's duty: always
            // a real slowdown, never a full stop.
            let dilation = DutyCycle::new(rng.range(1, 7) as u8).expect("step in 1..=6");
            bursts.push(BurstRecord {
                start: SimTime::ZERO + SimDuration::from_nanos(start),
                end: SimTime::ZERO + SimDuration::from_nanos(end),
                core,
                dilation,
            });
        }
        bursts.sort_by_key(|b| (b.start, b.end, b.core.0));
        Ok(EnvironmentPlan {
            tick: profile.tick,
            dvfs: profile.dvfs,
            thermal: profile.thermal,
            bursts,
        })
    }
}

impl fmt::Display for EnvironmentPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.dvfs.is_some() {
            parts.push("dvfs".to_string());
        }
        if self.thermal.is_some() {
            parts.push("thermal".to_string());
        }
        if !self.bursts.is_empty() {
            parts.push(format!("{} co-tenant burst(s)", self.bursts.len()));
        }
        if parts.is_empty() {
            write!(f, "static environment")
        } else {
            write!(
                f,
                "dynamic environment ({}) tick {}",
                parts.join(" + "),
                self.tick
            )
        }
    }
}

/// Shape parameters for [`EnvironmentPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvironmentProfile {
    /// The window co-tenant bursts are drawn from, starting at time
    /// zero. DVFS and thermal dynamics keep running past it.
    pub horizon: SimDuration,
    /// Evaluation tick period.
    pub tick: SimDuration,
    /// DVFS governor component.
    pub dvfs: Option<DvfsParams>,
    /// Thermal component.
    pub thermal: Option<ThermalParams>,
    /// Number of co-tenant bursts to draw.
    pub bursts: u32,
}

/// The default evaluation tick: 500 µs — half the kernel's scheduling
/// quantum, so the environment re-targets faster than threads migrate.
pub const DEFAULT_ENV_TICK: SimDuration = SimDuration::from_micros(500);

impl EnvironmentProfile {
    /// A static profile over `horizon`: ticks but never changes a speed.
    pub fn quiet(horizon: SimDuration) -> Self {
        EnvironmentProfile {
            horizon,
            tick: DEFAULT_ENV_TICK,
            dvfs: None,
            thermal: None,
            bursts: 0,
        }
    }

    /// The DVFS regime: an ondemand-style governor that ramps each core
    /// down after ~2 ms idle and back up after ~1 ms busy, up to three
    /// duty steps below base.
    pub fn dvfs(horizon: SimDuration) -> Self {
        EnvironmentProfile {
            dvfs: Some(DvfsParams {
                up_ticks: 2,
                down_ticks: 4,
                floor_steps: 3,
            }),
            ..EnvironmentProfile::quiet(horizon)
        }
    }

    /// The thermal regime: sustained busy work overheats a core in
    /// ~8 ms, throttling deepens one duty step per 4 excess heat units,
    /// and idle cooling runs twice as fast as heating.
    pub fn thermal(horizon: SimDuration) -> Self {
        EnvironmentProfile {
            thermal: Some(ThermalParams {
                heat_per_busy_tick: 1,
                cool_per_idle_tick: 2,
                throttle_at: 16,
                steps_per_excess: 4,
            }),
            ..EnvironmentProfile::quiet(horizon)
        }
    }

    /// The co-tenant regime: six seed-derived interference bursts over
    /// the horizon, each dilating one victim core's duty.
    pub fn co_tenant(horizon: SimDuration) -> Self {
        EnvironmentProfile {
            bursts: 6,
            ..EnvironmentProfile::quiet(horizon)
        }
    }

    /// Every component at once — the chaos-soak regime.
    pub fn combined(horizon: SimDuration) -> Self {
        EnvironmentProfile {
            dvfs: EnvironmentProfile::dvfs(horizon).dvfs,
            thermal: EnvironmentProfile::thermal(horizon).thermal,
            bursts: EnvironmentProfile::co_tenant(horizon).bursts,
            ..EnvironmentProfile::quiet(horizon)
        }
    }

    /// Overrides the evaluation tick period.
    pub fn tick(mut self, tick: SimDuration) -> Self {
        self.tick = tick;
        self
    }
}

/// Per-core evaluator state for one component-composed plan.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CoreEnv {
    /// Base duty in eighths (quantized from the machine's configured
    /// speed), the ceiling every component works below.
    base_eighths: u8,
    /// Current DVFS descent below base, in duty steps.
    dvfs_down: u8,
    /// Consecutive busy ticks observed.
    busy_streak: u32,
    /// Consecutive idle ticks observed.
    idle_streak: u32,
    /// Accumulated heat units.
    heat: u32,
}

/// The deterministic tick-by-tick evaluator of an [`EnvironmentPlan`].
///
/// Constructed once per kernel from the plan and the machine's base
/// speeds; [`EnvironmentState::tick`] consumes one busy sample per core
/// and returns the quantized target speed of every core whose target
/// changed since the previous tick. Outputs are a pure function of the
/// inputs — no hidden clocks, no randomness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvironmentState {
    plan: EnvironmentPlan,
    cores: Vec<CoreEnv>,
    /// The last target emitted per core, in eighths, to suppress
    /// no-change outputs.
    last_eighths: Vec<u8>,
}

/// Quantizes a speed factor to duty eighths (1..=8), rounding to the
/// nearest step. `Speed` is in (0, 1], so the result is always a valid
/// [`DutyCycle`] step.
fn quantize_eighths(speed: Speed) -> u8 {
    let e = (speed.factor() * 8.0).round() as i64;
    e.clamp(1, 8) as u8
}

impl EnvironmentState {
    /// An evaluator over `plan` for a machine whose cores start at
    /// `base_speeds`.
    pub fn new(plan: EnvironmentPlan, base_speeds: &[Speed]) -> Self {
        let cores: Vec<CoreEnv> = base_speeds
            .iter()
            .map(|&s| CoreEnv {
                base_eighths: quantize_eighths(s),
                dvfs_down: 0,
                busy_streak: 0,
                idle_streak: 0,
                heat: 0,
            })
            .collect();
        let last_eighths = cores.iter().map(|c| c.base_eighths).collect();
        EnvironmentState {
            plan,
            cores,
            last_eighths,
        }
    }

    /// The plan under evaluation.
    pub fn plan(&self) -> &EnvironmentPlan {
        &self.plan
    }

    /// Advances one tick at simulated time `now` with one busy sample
    /// per core, returning `(core, target)` for every core whose
    /// quantized target differs from the previous tick's.
    ///
    /// # Panics
    ///
    /// Panics if `busy.len()` differs from the number of cores the
    /// evaluator was built with.
    pub fn tick(&mut self, now: SimTime, busy: &[bool]) -> Vec<(CoreId, Speed)> {
        assert_eq!(
            busy.len(),
            self.cores.len(),
            "one busy sample per core required"
        );
        let mut changes = Vec::new();
        for (i, core) in self.cores.iter_mut().enumerate() {
            if busy[i] {
                core.busy_streak += 1;
                core.idle_streak = 0;
            } else {
                core.idle_streak += 1;
                core.busy_streak = 0;
            }

            if let Some(d) = &self.plan.dvfs {
                if busy[i] && core.busy_streak >= d.up_ticks && core.dvfs_down > 0 {
                    core.dvfs_down -= 1;
                    core.busy_streak = 0;
                } else if !busy[i] && core.idle_streak >= d.down_ticks {
                    let floor = d.floor_steps.min(core.base_eighths - 1);
                    if core.dvfs_down < floor {
                        core.dvfs_down += 1;
                    }
                    core.idle_streak = 0;
                }
            }

            let mut thermal_steps = 0u32;
            if let Some(t) = &self.plan.thermal {
                if busy[i] {
                    core.heat = core.heat.saturating_add(t.heat_per_busy_tick);
                } else {
                    core.heat = core.heat.saturating_sub(t.cool_per_idle_tick);
                }
                if core.heat > t.throttle_at {
                    thermal_steps = (core.heat - t.throttle_at).div_ceil(t.steps_per_excess);
                }
            }

            let mut eighths = core
                .base_eighths
                .saturating_sub(core.dvfs_down)
                .saturating_sub(thermal_steps.min(7) as u8)
                .max(1);

            for b in &self.plan.bursts {
                if b.core.0 == i && b.start <= now && now < b.end {
                    // Dilate: remaining share of the current duty, in
                    // integer eighths, never below one step.
                    eighths =
                        ((u16::from(eighths) * u16::from(b.dilation.eighths())) / 8).max(1) as u8;
                }
            }

            if eighths != self.last_eighths[i] {
                self.last_eighths[i] = eighths;
                let duty = DutyCycle::new(eighths).expect("eighths clamped to 1..=8");
                changes.push((CoreId(i), Speed::from(duty)));
            }
        }
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(n: usize) -> Vec<Speed> {
        vec![Speed::FULL; n]
    }

    #[test]
    fn generate_is_pure_in_the_seed() {
        let profile = EnvironmentProfile::combined(SimDuration::from_secs(2));
        let a = EnvironmentPlan::generate(7, 4, &profile);
        let b = EnvironmentPlan::generate(7, 4, &profile);
        assert_eq!(a, b);
        let c = EnvironmentPlan::generate(8, 4, &profile);
        assert_ne!(a, c);
    }

    #[test]
    fn validation_rejects_degenerate_profiles() {
        let horizon = SimDuration::from_secs(1);
        assert_eq!(
            EnvironmentPlan::try_generate(0, 0, &EnvironmentProfile::quiet(horizon)),
            Err(EnvironmentError::NoCores)
        );
        let zero_tick = EnvironmentProfile::quiet(horizon).tick(SimDuration::from_nanos(0));
        assert_eq!(
            EnvironmentPlan::try_generate(0, 2, &zero_tick),
            Err(EnvironmentError::ZeroTick)
        );
        let mut bad_thermal = EnvironmentProfile::thermal(horizon);
        bad_thermal.thermal.as_mut().unwrap().steps_per_excess = 0;
        assert_eq!(
            EnvironmentPlan::try_generate(0, 2, &bad_thermal),
            Err(EnvironmentError::ZeroThrottleCurve)
        );
        assert!(format!("{}", EnvironmentError::ZeroTick).contains("tick"));
    }

    #[test]
    fn bursts_stay_inside_the_horizon_and_name_real_cores() {
        let horizon = SimDuration::from_secs(2);
        let end = SimTime::ZERO + horizon;
        for seed in 0..64u64 {
            let plan = EnvironmentPlan::generate(seed, 3, &EnvironmentProfile::co_tenant(horizon));
            for b in plan.bursts() {
                assert!(b.start < b.end, "seed {seed}: empty burst");
                assert!(b.end <= end, "seed {seed}: burst outlives horizon");
                assert!(b.core.0 < 3, "seed {seed}: out-of-range victim");
                assert!(b.dilation.eighths() < 8, "seed {seed}: no-op dilation");
            }
            assert!(plan.bursts().windows(2).all(|w| w[0].start <= w[1].start));
        }
    }

    #[test]
    fn quiet_plans_are_static_and_emit_nothing() {
        let plan =
            EnvironmentPlan::generate(1, 2, &EnvironmentProfile::quiet(SimDuration::from_secs(1)));
        assert!(plan.is_static());
        let mut state = EnvironmentState::new(plan, &base(2));
        for i in 0..100 {
            let now = SimTime::ZERO + DEFAULT_ENV_TICK * i;
            assert!(state.tick(now, &[i % 2 == 0, true]).is_empty());
        }
    }

    #[test]
    fn dvfs_ramps_down_when_idle_and_back_up_when_busy() {
        let profile = EnvironmentProfile::dvfs(SimDuration::from_secs(1));
        let plan = EnvironmentPlan::generate(0, 1, &profile);
        let mut state = EnvironmentState::new(plan, &base(1));
        let mut t = SimTime::ZERO;
        let mut step = || {
            t += DEFAULT_ENV_TICK;
            t
        };
        // Four idle ticks -> one step down (7/8).
        let mut last = None;
        for _ in 0..4 {
            let now = step();
            for c in state.tick(now, &[false]) {
                last = Some(c);
            }
        }
        let (core, speed) = last.expect("governor stepped down");
        assert_eq!(core, CoreId(0));
        assert_eq!(quantize_eighths(speed), 7);
        // Sustained idle bottoms out at the floor (8 - 3 = 5/8).
        for _ in 0..40 {
            let now = step();
            for c in state.tick(now, &[false]) {
                last = Some(c);
            }
        }
        assert_eq!(quantize_eighths(last.unwrap().1), 5);
        // Busy ticks climb back to full.
        for _ in 0..40 {
            let now = step();
            for c in state.tick(now, &[true]) {
                last = Some(c);
            }
        }
        assert_eq!(quantize_eighths(last.unwrap().1), 8);
    }

    #[test]
    fn thermal_throttles_past_the_cap_and_recovers_when_idle() {
        let profile = EnvironmentProfile::thermal(SimDuration::from_secs(1));
        let plan = EnvironmentPlan::generate(0, 1, &profile);
        let mut state = EnvironmentState::new(plan, &base(1));
        let mut t = SimTime::ZERO;
        let mut last = None;
        // 17 busy ticks: heat 17 > 16 -> first throttle step.
        for _ in 0..17 {
            t += DEFAULT_ENV_TICK;
            for c in state.tick(t, &[true]) {
                last = Some(c);
            }
        }
        assert_eq!(quantize_eighths(last.expect("throttled").1), 7);
        // Deeper heat -> deeper throttle (heat 21, excess 5 -> 2 steps).
        for _ in 0..4 {
            t += DEFAULT_ENV_TICK;
            for c in state.tick(t, &[true]) {
                last = Some(c);
            }
        }
        assert_eq!(quantize_eighths(last.unwrap().1), 6);
        // Idle cooling restores full speed.
        for _ in 0..20 {
            t += DEFAULT_ENV_TICK;
            for c in state.tick(t, &[false]) {
                last = Some(c);
            }
        }
        assert_eq!(quantize_eighths(last.unwrap().1), 8);
    }

    #[test]
    fn co_tenant_bursts_dilate_only_their_window_and_victim() {
        let horizon = SimDuration::from_secs(1);
        let plan = EnvironmentPlan::generate(11, 2, &EnvironmentProfile::co_tenant(horizon));
        let bursts = plan.bursts().to_vec();
        assert!(!bursts.is_empty());
        let b = bursts[0];
        let mut state = EnvironmentState::new(plan, &base(2));
        // Inside the burst window the victim is dilated...
        let inside = state.tick(b.start, &[false, false]);
        assert!(inside.iter().any(|(c, s)| *c == b.core && !s.is_full()));
        // ...and after every burst ends, a late tick restores base.
        let after_all = bursts.iter().map(|b| b.end).max().unwrap();
        let restored = state.tick(after_all, &[false, false]);
        assert!(restored.iter().all(|(_, s)| s.is_full()));
    }

    #[test]
    fn evaluation_is_a_pure_function_of_plan_and_samples() {
        let profile = EnvironmentProfile::combined(SimDuration::from_secs(1));
        let run = || {
            let plan = EnvironmentPlan::generate(3, 4, &profile);
            let mut state = EnvironmentState::new(plan, &base(4));
            let mut out = Vec::new();
            for i in 0..200u64 {
                let now = SimTime::ZERO + DEFAULT_ENV_TICK * i;
                let busy: Vec<bool> = (0..4).map(|c| (i + c) % 3 != 0).collect();
                out.extend(state.tick(now, &busy));
            }
            out
        };
        let a = run();
        assert_eq!(a, run());
        assert!(!a.is_empty());
    }

    #[test]
    fn targets_quantize_to_duty_steps_and_respect_base() {
        // A slow core at 1/8 duty can never be pushed below one eighth.
        let profile = EnvironmentProfile::combined(SimDuration::from_secs(1));
        let plan = EnvironmentPlan::generate(5, 2, &profile);
        let slow = Speed::fraction_of_full(8);
        let mut state = EnvironmentState::new(plan, &[Speed::FULL, slow]);
        for i in 0..300u64 {
            let now = SimTime::ZERO + DEFAULT_ENV_TICK * i;
            for (core, speed) in state.tick(now, &[true, false]) {
                let e = quantize_eighths(speed);
                assert!((1..=8).contains(&e));
                if core == CoreId(1) {
                    assert!(e <= 1, "slow core can only stay at its base step");
                }
            }
        }
    }
}
