//! Units of computation: [`Cycles`], [`Speed`], and [`DutyCycle`].
//!
//! The paper emulates performance asymmetry by modulating the clock duty
//! cycle of individual Xeon processors: a processor at duty cycle 12.5%
//! retires work at 1/8 the rate of a full-speed processor. We model this
//! directly: a core has a [`Speed`] (1.0 = full speed), and executing
//! [`Cycles`] of work on a core takes `cycles / (speed × base_hz)` seconds.

use crate::time::SimDuration;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// The simulated base clock rate in cycles per nanosecond.
///
/// 2.8 cycles/ns = 2.8 GHz, echoing the 2.8 GHz Xeon prototype used by the
/// paper.
pub const BASE_CYCLES_PER_NANO: f64 = 2.8;

/// A quantity of work expressed in processor clock cycles at full speed.
///
/// # Examples
///
/// ```
/// use asym_sim::{Cycles, Speed};
///
/// let work = Cycles::from_micros_at_full_speed(10.0);
/// // On a half-speed core the same work takes twice as long.
/// assert_eq!(
///     work.duration_at(Speed::new(0.5)).as_nanos(),
///     2 * work.duration_at(Speed::FULL).as_nanos(),
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// No work at all.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a work quantity of `count` cycles.
    pub const fn new(count: u64) -> Self {
        Cycles(count)
    }

    /// Returns the raw cycle count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns `true` when no work remains.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The work a full-speed core completes in `micros` microseconds.
    pub fn from_micros_at_full_speed(micros: f64) -> Self {
        assert!(
            micros.is_finite() && micros >= 0.0,
            "microseconds must be finite and non-negative, got {micros}"
        );
        Cycles((micros * 1_000.0 * BASE_CYCLES_PER_NANO).round() as u64)
    }

    /// The work a full-speed core completes in `millis` milliseconds.
    pub fn from_millis_at_full_speed(millis: f64) -> Self {
        Self::from_micros_at_full_speed(millis * 1_000.0)
    }

    /// The wall-clock time this work takes on a core running at `speed`,
    /// rounded up to whole nanoseconds (with an epsilon so exact results
    /// are not inflated by floating-point error).
    pub fn duration_at(self, speed: Speed) -> SimDuration {
        let exact = self.0 as f64 / (speed.factor() * BASE_CYCLES_PER_NANO);
        let rounded = exact.round();
        let nanos = if (exact - rounded).abs() < 1e-6 {
            rounded
        } else {
            exact.ceil()
        };
        SimDuration::from_nanos(nanos as u64)
    }

    /// The cycles retired by a core at `speed` over `elapsed` time, capped
    /// at `self` (a core cannot retire more work than remains).
    pub fn retired_over(self, speed: Speed, elapsed: SimDuration) -> Cycles {
        let exact = elapsed.as_nanos() as f64 * speed.factor() * BASE_CYCLES_PER_NANO;
        let done = (exact + 1e-6).floor() as u64;
        Cycles(done.min(self.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        *self = *self + rhs;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    /// # Panics
    ///
    /// Panics on underflow; use [`Cycles::saturating_sub`] when the result
    /// may be negative.
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(
            self.0
                .checked_sub(rhs.0)
                .expect("cycle subtraction underflow"),
        )
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        *self = *self - rhs;
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

/// The relative execution rate of a core: 1.0 is a full-speed ("fast")
/// core, 0.125 is a core modulated to a 12.5% duty cycle.
///
/// # Examples
///
/// ```
/// use asym_sim::Speed;
///
/// let slow = Speed::fraction_of_full(8); // the paper's "/8" cores
/// assert_eq!(slow.factor(), 0.125);
/// assert!(slow < Speed::FULL);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Speed(f64);

impl Speed {
    /// Full (unmodulated) speed.
    pub const FULL: Speed = Speed(1.0);

    /// Creates a speed with the given factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn new(factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0 && factor <= 1.0,
            "speed factor must be in (0, 1], got {factor}"
        );
        Speed(factor)
    }

    /// The speed of a core running at `1/denominator` of full speed — the
    /// paper's `nf-ms/denominator` notation.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero.
    pub fn fraction_of_full(denominator: u32) -> Self {
        assert!(denominator > 0, "speed denominator must be non-zero");
        Speed(1.0 / f64::from(denominator))
    }

    /// Returns the speed factor in `(0, 1]`.
    pub const fn factor(self) -> f64 {
        self.0
    }

    /// Returns `true` if this is a full-speed core.
    pub fn is_full(self) -> bool {
        self.0 == 1.0
    }
}

impl Default for Speed {
    fn default() -> Self {
        Speed::FULL
    }
}

impl Eq for Speed {}

impl std::hash::Hash for Speed {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Valid speeds are finite and never -0.0, so hashing the bit
        // pattern is consistent with the manual `Eq` above.
        self.0.to_bits().hash(state);
    }
}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Speed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Valid speeds are finite and positive, so total order is safe.
        self.0.partial_cmp(&other.0).expect("speeds are finite")
    }
}

impl fmt::Display for Speed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}x", self.0)
    }
}

impl From<DutyCycle> for Speed {
    fn from(duty: DutyCycle) -> Speed {
        Speed(duty.fraction())
    }
}

/// A clock-modulation duty cycle, in the 12.5% steps supported by the
/// Xeon's thermal-management clock modulation register (the mechanism the
/// paper uses to create asymmetry).
///
/// # Examples
///
/// ```
/// use asym_sim::{DutyCycle, Speed};
///
/// let d = DutyCycle::new(2)?; // 2/8 = 25%
/// assert_eq!(d.percent(), 25.0);
/// assert_eq!(Speed::from(d), Speed::new(0.25));
/// # Ok::<(), asym_sim::InvalidDutyCycleError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DutyCycle {
    eighths: u8,
}

impl DutyCycle {
    /// Full duty cycle (no modulation).
    pub const FULL: DutyCycle = DutyCycle { eighths: 8 };

    /// Creates a duty cycle of `eighths/8` (1 ⇒ 12.5%, … , 8 ⇒ 100%).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDutyCycleError`] unless `1 <= eighths <= 8`.
    pub fn new(eighths: u8) -> Result<Self, InvalidDutyCycleError> {
        if (1..=8).contains(&eighths) {
            Ok(DutyCycle { eighths })
        } else {
            Err(InvalidDutyCycleError { eighths })
        }
    }

    /// The raw modulation step, in `1..=8`.
    pub fn eighths(self) -> u8 {
        self.eighths
    }

    /// The duty cycle as a fraction in `(0, 1]`.
    pub fn fraction(self) -> f64 {
        f64::from(self.eighths) / 8.0
    }

    /// The duty cycle as a percentage.
    pub fn percent(self) -> f64 {
        self.fraction() * 100.0
    }

    /// All eight modulation steps, slowest first.
    pub fn steps() -> impl Iterator<Item = DutyCycle> {
        (1..=8).map(|eighths| DutyCycle { eighths })
    }
}

impl Default for DutyCycle {
    fn default() -> Self {
        DutyCycle::FULL
    }
}

impl fmt::Display for DutyCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}%", self.percent())
    }
}

/// Error returned by [`DutyCycle::new`] for an out-of-range step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidDutyCycleError {
    eighths: u8,
}

impl fmt::Display for InvalidDutyCycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "duty cycle step must be between 1 and 8 eighths, got {}",
            self.eighths
        )
    }
}

impl std::error::Error for InvalidDutyCycleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_duration_scales_inversely_with_speed() {
        let work = Cycles::new(2_800_000); // 1 ms at full speed
        assert_eq!(work.duration_at(Speed::FULL), SimDuration::from_millis(1));
        assert_eq!(
            work.duration_at(Speed::fraction_of_full(8)),
            SimDuration::from_millis(8)
        );
    }

    #[test]
    fn retired_over_is_capped_at_remaining() {
        let work = Cycles::new(100);
        let retired = work.retired_over(Speed::FULL, SimDuration::from_secs(1));
        assert_eq!(retired, work);
        let partial = Cycles::new(28_000).retired_over(Speed::FULL, SimDuration::from_micros(5));
        assert_eq!(partial.get(), 14_000);
    }

    #[test]
    fn micros_constructor_matches_duration() {
        let work = Cycles::from_micros_at_full_speed(250.0);
        assert_eq!(work.duration_at(Speed::FULL), SimDuration::from_micros(250));
    }

    #[test]
    fn speed_validation() {
        assert_eq!(Speed::fraction_of_full(4).factor(), 0.25);
        assert!(Speed::FULL.is_full());
        assert!(!Speed::new(0.5).is_full());
    }

    #[test]
    #[should_panic(expected = "speed factor")]
    fn zero_speed_rejected() {
        let _ = Speed::new(0.0);
    }

    #[test]
    fn duty_cycle_steps() {
        let steps: Vec<f64> = DutyCycle::steps().map(|d| d.percent()).collect();
        assert_eq!(steps, vec![12.5, 25.0, 37.5, 50.0, 62.5, 75.0, 87.5, 100.0]);
        assert!(DutyCycle::new(0).is_err());
        assert!(DutyCycle::new(9).is_err());
        assert_eq!(Speed::from(DutyCycle::new(1).unwrap()).factor(), 0.125);
    }

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(10);
        let b = Cycles::new(4);
        assert_eq!(a + b, Cycles::new(14));
        assert_eq!(a - b, Cycles::new(6));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        let total: Cycles = vec![a, b, b].into_iter().sum();
        assert_eq!(total, Cycles::new(18));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn cycle_subtraction_underflow_panics() {
        let _ = Cycles::new(1) - Cycles::new(2);
    }
}
