//! # asym-sim
//!
//! Deterministic discrete-event simulation primitives for studying
//! performance-asymmetric multicore systems, reproducing the substrate of
//! *"The Impact of Performance Asymmetry in Emerging Multicore
//! Architectures"* (ISCA 2005).
//!
//! The paper emulates asymmetry on real hardware by modulating each Xeon
//! processor's clock duty cycle. This crate provides the corresponding
//! simulated building blocks:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-granularity simulated time;
//! * [`Cycles`], [`Speed`], [`DutyCycle`] — work and per-core execution
//!   rates (duty cycle ⇒ speed factor);
//! * [`MachineSpec`], [`CoreId`], [`CoreMask`] — machine shape and affinity;
//! * [`EventQueue`] — a cancellable, deterministic event queue;
//! * [`Rng`] — a seedable SplitMix64 generator so each run is a pure
//!   function of its seed;
//! * [`StableHasher`] — a platform-independent FNV-1a hasher for trace
//!   fingerprints;
//! * [`FaultPlan`] — a deterministic, seed-derived schedule of dynamic
//!   asymmetry events (throttling, core hotplug, thread kills).
//!
//! Higher layers (`asym-kernel`, `asym-sync`, `asym-omp`) build the
//! simulated OS and threading runtimes on top.
//!
//! # Examples
//!
//! ```
//! use asym_sim::{Cycles, MachineSpec, Speed};
//!
//! // The paper's 1f-3s/8 configuration: one fast core, three at 1/8 speed.
//! let machine = MachineSpec::asymmetric(1, 3, Speed::fraction_of_full(8));
//! assert_eq!(machine.total_compute_power(), 1.375);
//!
//! // A 1 ms transaction takes 8 ms on a slow core.
//! let tx = Cycles::from_millis_at_full_speed(1.0);
//! let slow = machine.speed(asym_sim::CoreId(3));
//! assert_eq!(tx.duration_at(slow).as_nanos(), 8_000_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod environment;
mod event;
mod fault;
mod hash;
mod machine;
mod rng;
mod time;
mod work;

pub use environment::{
    BurstRecord, DvfsParams, EnvironmentError, EnvironmentPlan, EnvironmentProfile,
    EnvironmentState, ThermalParams, DEFAULT_ENV_TICK,
};
pub use event::{EventKey, EventQueue};
pub use fault::{FaultKind, FaultPlan, FaultPlanError, FaultProfile, FaultRecord};
pub use hash::StableHasher;
pub use machine::{CoreId, CoreMask, MachineSpec, MachineSpecError};
pub use rng::Rng;
pub use time::{SimDuration, SimTime};
pub use work::{Cycles, DutyCycle, InvalidDutyCycleError, Speed, BASE_CYCLES_PER_NANO};
