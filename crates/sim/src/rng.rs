//! Deterministic pseudo-random number generation.
//!
//! Simulations must be a pure function of `(parameters, seed)` so that every
//! figure in the paper regenerates bit-identically. We therefore keep a
//! small, self-contained SplitMix64 generator rather than depending on the
//! exact stream layout of an external crate.

use std::fmt;

/// A seedable SplitMix64 pseudo-random number generator.
///
/// SplitMix64 passes BigCrush, has a 2^64 period, and — crucially for this
/// workspace — is trivially stable across platforms and crate versions.
///
/// # Examples
///
/// ```
/// use asym_sim::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub const fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Derives an independent child generator; used to give each simulated
    /// component its own stream so adding events to one component does not
    /// perturb another.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: bound must be non-zero");
        // Lemire-style rejection-free reduction is overkill here; modulo
        // bias is negligible for the bounds used in this workspace, but we
        // use widening multiply anyway because it is branch-free and exact
        // enough.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range: lo ({lo}) must be below hi ({hi})");
        lo + self.below(hi - lo)
    }

    /// Returns a uniform `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick: empty slice");
        &items[self.index(items.len())]
    }

    /// Shuffles `items` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples an exponential distribution with the given `mean`.
    ///
    /// # Panics
    ///
    /// Panics unless `mean` is positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        let u = 1.0 - self.next_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Samples a standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Samples a log-normal distribution parameterised by the mean and
    /// sigma of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Samples an index from a discrete distribution given by `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weighted_index: weights must sum to a positive finite value"
        );
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

impl Default for Rng {
    /// A generator seeded with zero; prefer [`Rng::new`] with an explicit
    /// seed in experiments.
    fn default() -> Self {
        Rng::new(0)
    }
}

impl fmt::Display for Rng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rng(state={:#x})", self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_produces_distinct_stream() {
        let mut a = Rng::new(7);
        let mut child = a.fork();
        let next_parent = a.next_u64();
        let next_child = child.next_u64();
        assert_ne!(next_parent, next_child);
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = Rng::new(3);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Rng::new(11);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = Rng::new(5);
        let n = 20_000;
        let mean = 4.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < 0.15 * mean,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let mut rng = Rng::new(13);
        for _ in 0..500 {
            let i = rng.weighted_index(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(17);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
