//! A stable, platform-independent hasher for trace fingerprinting.
//!
//! [`std::collections::hash_map::DefaultHasher`] is explicitly allowed to
//! change between Rust releases, so determinism checks ("the same seed
//! produces the identical trace") need their own hash with a pinned
//! algorithm. [`StableHasher`] is 64-bit FNV-1a: tiny, allocation-free,
//! and byte-for-byte reproducible everywhere.

use std::hash::Hasher;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a [`Hasher`] with a stable, documented algorithm.
///
/// Feed it anything that implements [`std::hash::Hash`]; equal inputs
/// produce equal outputs on every platform and toolchain.
///
/// # Examples
///
/// ```
/// use asym_sim::StableHasher;
/// use std::hash::{Hash, Hasher};
///
/// let mut a = StableHasher::new();
/// let mut b = StableHasher::new();
/// (1u64, "trace").hash(&mut a);
/// (1u64, "trace").hash(&mut b);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// Creates a hasher at the standard FNV offset basis.
    pub const fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    #[test]
    fn known_vectors() {
        // FNV-1a test vectors from the reference implementation.
        let hash = |bytes: &[u8]| {
            let mut h = StableHasher::new();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn hash_trait_integration_is_deterministic() {
        let digest = |v: &[(u64, bool)]| {
            let mut h = StableHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        let data = vec![(1, true), (2, false)];
        assert_eq!(digest(&data), digest(&data));
        assert_ne!(digest(&data), digest(&[(1, true)]));
    }
}
