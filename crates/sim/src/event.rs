//! A cancellable discrete-event queue.
//!
//! [`EventQueue`] is a min-heap of `(time, sequence)`-ordered events with
//! O(log n) insertion and tombstone-based cancellation. Ties in time are
//! broken by insertion order, which keeps simulations deterministic.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

/// A handle to a scheduled event, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventKey(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    key: EventKey,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.key).cmp(&(other.time, other.key))
    }
}

/// A deterministic discrete-event queue.
///
/// # Examples
///
/// ```
/// use asym_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "late");
/// q.schedule(SimTime::from_nanos(10), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_nanos(), e), (10, "early"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: HashSet<EventKey>,
    next_key: u64,
    live: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_key: 0,
            live: 0,
        }
    }

    /// Schedules `payload` to fire at `time`; returns a key that can cancel
    /// it. Events scheduled at equal times fire in scheduling order.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventKey {
        let key = EventKey(self.next_key);
        self.next_key += 1;
        self.heap.push(Reverse(Entry { time, key, payload }));
        self.live += 1;
        key
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (not yet fired or cancelled).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if key.0 >= self.next_key {
            return false;
        }
        if self.cancelled.insert(key) {
            self.live = self.live.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest live event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.key) {
                continue; // tombstoned
            }
            self.live -= 1;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// The time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.key) {
                let key = entry.key;
                self.heap.pop();
                self.cancelled.remove(&key);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// The number of live (scheduled, not cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.live)
            .field("heap_size", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(nanos: u64) -> SimTime {
        SimTime::from_nanos(nanos)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_suppresses_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_key_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventKey(99)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
