//! Seeded negative fixtures: small simulated programs with planted
//! concurrency bugs, used to prove each detector actually fires.
//!
//! Each fixture runs a real [`Kernel`] under
//! [`capture_traces`] and returns the
//! captured [`KernelTrace`] for analysis.

use asym_kernel::{
    capture_traces, FnThread, Kernel, KernelTrace, SchedPolicy, SpawnOptions, Step, TraceEvent,
    TraceRecord, WakeReason,
};
use asym_sim::{CoreId, CoreMask, Cycles, MachineSpec, SimDuration, SimTime, Speed};
use asym_sync::{SimCondvar, SimMutex, SimShared};
use std::cell::Cell;
use std::rc::Rc;

fn capture_one(f: impl FnOnce()) -> KernelTrace {
    let ((), mut traces) = capture_traces(f);
    assert_eq!(traces.len(), 1, "fixture builds exactly one kernel");
    traces.remove(0)
}

/// A thread that takes `first` then `second` with a compute burst in
/// between, then releases both and exits. `delay` postpones its start.
fn ordered_locker(
    name: &str,
    first: SimMutex,
    second: SimMutex,
    delay: SimDuration,
    hold: Cycles,
) -> FnThread<impl FnMut(&mut asym_kernel::ThreadCx<'_>) -> Step> {
    let mut phase = 0u8;
    FnThread::new(name, move |cx| loop {
        match phase {
            0 => {
                phase = 1;
                if !delay.is_zero() {
                    return Step::Sleep(delay);
                }
            }
            1 => match first.lock_step(cx) {
                Ok(()) => phase = 2,
                Err(step) => return step,
            },
            2 => {
                phase = 3;
                if !hold.is_zero() {
                    return Step::Compute(hold);
                }
            }
            3 => match second.lock_step(cx) {
                Ok(()) => phase = 4,
                Err(step) => return step,
            },
            4 => {
                phase = 5;
                return Step::Compute(Cycles::from_micros_at_full_speed(50.0));
            }
            _ => {
                second.unlock(cx);
                first.unlock(cx);
                return Step::Done;
            }
        }
    })
}

/// The AB/BA inversion, staggered so the run *completes*: thread 1
/// takes A then B immediately; thread 2 sleeps 5 ms, then takes B then
/// A — long after thread 1 released both. No deadlock occurs, but the
/// lock-order inversion is latent and lockdep must flag it.
pub fn lock_order_inversion() -> KernelTrace {
    capture_one(|| {
        let machine = MachineSpec::symmetric(2, Speed::FULL);
        let mut k = Kernel::new(machine, SchedPolicy::os_default(), 1);
        let a = SimMutex::new(&mut k);
        let b = SimMutex::new(&mut k);
        k.spawn(
            ordered_locker(
                "t1-ab",
                a.clone(),
                b.clone(),
                SimDuration::ZERO,
                Cycles::from_micros_at_full_speed(100.0),
            ),
            SpawnOptions::new(),
        );
        k.spawn(
            ordered_locker(
                "t2-ba",
                b,
                a,
                SimDuration::from_millis(5),
                Cycles::from_micros_at_full_speed(100.0),
            ),
            SpawnOptions::new(),
        );
        k.run();
    })
}

/// The AB/BA inversion with both threads overlapping: each grabs its
/// first lock, computes 2 ms, then reaches for the other's lock. The
/// run wedges with a 2-cycle in the wait-for graph — the deadlock
/// detector must fire (and lockdep too).
pub fn ab_ba_deadlock() -> KernelTrace {
    capture_one(|| {
        let machine = MachineSpec::symmetric(2, Speed::FULL);
        let mut k = Kernel::new(machine, SchedPolicy::os_default(), 2);
        let a = SimMutex::new(&mut k);
        let b = SimMutex::new(&mut k);
        let hold = Cycles::from_millis_at_full_speed(2.0);
        k.spawn(
            ordered_locker("t1-ab", a.clone(), b.clone(), SimDuration::ZERO, hold),
            SpawnOptions::new(),
        );
        k.spawn(
            ordered_locker("t2-ba", b, a, SimDuration::ZERO, hold),
            SpawnOptions::new(),
        );
        k.run();
    })
}

/// The classic missed-signal bug: the producer sets the flag and
/// signals the condition variable at time ~0, while the consumer is
/// still computing; the consumer then locks the mutex and waits
/// *without rechecking the flag*. The signal is gone — the consumer
/// blocks forever and the run deadlocks.
pub fn missed_signal() -> KernelTrace {
    capture_one(|| {
        let machine = MachineSpec::symmetric(2, Speed::FULL);
        let mut k = Kernel::new(machine, SchedPolicy::os_default(), 3);
        let m = SimMutex::new(&mut k);
        let c = SimCondvar::new(&mut k);
        let flag = Rc::new(Cell::new(false));

        let (pm, pc, pflag) = (m.clone(), c.clone(), flag.clone());
        let mut phase = 0u8;
        k.spawn(
            FnThread::new("producer", move |cx| loop {
                match phase {
                    0 => match pm.lock_step(cx) {
                        Ok(()) => phase = 1,
                        Err(step) => return step,
                    },
                    _ => {
                        pflag.set(true);
                        pm.unlock(cx);
                        pc.notify_one(cx);
                        return Step::Done;
                    }
                }
            }),
            SpawnOptions::new(),
        );

        let mut phase = 0u8;
        k.spawn(
            FnThread::new("consumer", move |cx| loop {
                match phase {
                    0 => {
                        phase = 1;
                        return Step::Compute(Cycles::from_millis_at_full_speed(2.0));
                    }
                    1 => match m.lock_step(cx) {
                        Ok(()) => phase = 2,
                        Err(step) => return step,
                    },
                    _ => {
                        // BUG: waits without rechecking `flag`. The
                        // producer's notify already happened, so this
                        // block is forever. (The correct code would
                        // check `flag.get()` here and skip the wait.)
                        phase = 1;
                        return c.wait_step(cx, &m);
                    }
                }
            }),
            SpawnOptions::new(),
        );
        k.run();
    })
}

/// A sleep-polling livelock: one thread naps 100 µs forever, retiring
/// no work, while time marches on. The kernel's watchdog (armed at
/// 5 ms) gives up and ends the run [`Stalled`](asym_kernel::RunOutcome::Stalled) —
/// the forward-progress checker must flag the trace.
pub fn stalled_run() -> KernelTrace {
    capture_one(|| {
        let machine = MachineSpec::symmetric(2, Speed::FULL);
        let mut k = Kernel::new(machine, SchedPolicy::os_default(), 4);
        k.set_watchdog(SimDuration::from_millis(5));
        k.spawn(
            FnThread::new("poller", |_cx| {
                // BUG: polls by sleeping instead of blocking on a wait
                // queue; nothing ever gets done.
                Step::Sleep(SimDuration::from_micros(100))
            }),
            SpawnOptions::new(),
        );
        k.run();
    })
}

/// A forged trace in which a thread is dispatched on a core *after* a
/// hotplug fault took that core offline. The real kernel never does
/// this — `fault_core_offline` migrates everything before returning —
/// so the history is rewritten by hand on top of a genuinely captured
/// trace (keeping the machine/policy metadata authentic), exactly like
/// the hand-built fast-core-idle trace in the unit tests.
pub fn offline_core_dispatch() -> KernelTrace {
    let mut trace = capture_one(|| {
        let machine = MachineSpec::symmetric(2, Speed::FULL);
        let mut k = Kernel::new(machine, SchedPolicy::os_default(), 5);
        k.spawn(FnThread::new("w", |_cx| Step::Done), SpawnOptions::new());
        k.run();
    });
    let tid = trace
        .records()
        .find_map(|r| match r.event {
            TraceEvent::Spawn { tid, .. } => Some(tid),
            _ => None,
        })
        .expect("captured trace has a spawn");
    let t = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
    trace.set_records(vec![
        TraceRecord {
            time: t(0),
            event: TraceEvent::Spawn {
                tid,
                core: CoreId(1),
                affinity: CoreMask::ALL,
                parent: None,
            },
        },
        TraceRecord {
            time: t(1),
            event: TraceEvent::CoreOffline { core: CoreId(1) },
        },
        // BUG (planted): the scheduler keeps using the dead core.
        TraceRecord {
            time: t(2),
            event: TraceEvent::Dispatch {
                tid,
                core: CoreId(1),
            },
        },
    ]);
    trace
}

/// A forged trace in which a fault-injected kill is silently swallowed:
/// the `ThreadKilled` record is there but the `Done` that retires the
/// victim never follows. The real kernel always emits the pair together
/// (that is what `threads_killed` and the workloads' `lost_workers`
/// extras hang off), so the history is rewritten by hand on top of a
/// genuinely captured trace, like [`offline_core_dispatch`].
pub fn swallowed_kill() -> KernelTrace {
    let mut trace = capture_one(|| {
        let machine = MachineSpec::symmetric(2, Speed::FULL);
        let mut k = Kernel::new(machine, SchedPolicy::os_default(), 6);
        k.spawn(FnThread::new("w", |_cx| Step::Done), SpawnOptions::new());
        k.run();
    });
    let tid = trace
        .records()
        .find_map(|r| match r.event {
            TraceEvent::Spawn { tid, .. } => Some(tid),
            _ => None,
        })
        .expect("captured trace has a spawn");
    let t = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
    trace.set_records(vec![
        TraceRecord {
            time: t(0),
            event: TraceEvent::Spawn {
                tid,
                core: CoreId(0),
                affinity: CoreMask::ALL,
                parent: None,
            },
        },
        TraceRecord {
            time: t(1),
            event: TraceEvent::Dispatch {
                tid,
                core: CoreId(0),
            },
        },
        // BUG (planted): the kill lands but no Done retires the victim —
        // the thread just vanishes from the books.
        TraceRecord {
            time: t(2),
            event: TraceEvent::ThreadKilled { tid },
        },
    ]);
    trace
}

/// Two workers increment the same [`SimShared`] word as a plain
/// read-then-write with **no** synchronization between them: the
/// canonical unprotected-write data race. The run itself completes fine
/// (the simulation is single-OS-thread deterministic, so the race never
/// corrupts anything) — only the happens-before analysis can see that
/// the accesses are unordered.
pub fn unprotected_write_race() -> KernelTrace {
    capture_one(|| {
        let machine = MachineSpec::symmetric(2, Speed::FULL);
        let mut k = Kernel::new(machine, SchedPolicy::os_default(), 8);
        let counter: SimShared<u64> = SimShared::new(&mut k, "fixture.counter", 0);
        for name in ["w1", "w2"] {
            let counter = counter.clone();
            let mut done = false;
            k.spawn(
                FnThread::new(name, move |cx| {
                    if done {
                        return Step::Done;
                    }
                    done = true;
                    // BUG: an unprotected read-modify-write, racing the
                    // other worker's identical accesses.
                    let v = counter.read(cx, |c| *c);
                    counter.write(cx, |c| *c = v + 1);
                    Step::Compute(Cycles::from_micros_at_full_speed(10.0))
                }),
                SpawnOptions::new(),
            );
        }
        k.run();
    })
}

/// Each worker protects the shared table with its **own** mutex: every
/// access happens under a lock, but no common lock covers them all. An
/// atomic flag hand-off orders the two critical sections, so there is no
/// data race to mask the finding — only the lock-set discipline is
/// broken, and the Eraser-style checker must flag it.
pub fn lockset_violation() -> KernelTrace {
    capture_one(|| {
        let machine = MachineSpec::symmetric(2, Speed::FULL);
        let mut k = Kernel::new(machine, SchedPolicy::os_default(), 9);
        let a = SimMutex::new(&mut k);
        let b = SimMutex::new(&mut k);
        let table: SimShared<u64> = SimShared::new(&mut k, "fixture.table", 0);
        let flag: SimShared<bool> = SimShared::new(&mut k, "fixture.flag", false);

        let (t1_table, t1_flag) = (table.clone(), flag.clone());
        let mut phase = 0u8;
        k.spawn(
            FnThread::new("t1-lock-a", move |cx| loop {
                match phase {
                    0 => match a.lock_step(cx) {
                        Ok(()) => phase = 1,
                        Err(step) => return step,
                    },
                    _ => {
                        t1_table.write(cx, |t| *t += 1);
                        a.unlock(cx);
                        t1_flag.store(cx, |f| *f = true);
                        return Step::Done;
                    }
                }
            }),
            SpawnOptions::new(),
        );

        let mut phase = 0u8;
        k.spawn(
            FnThread::new("t2-lock-b", move |cx| loop {
                match phase {
                    0 => {
                        phase = 1;
                        return Step::Sleep(SimDuration::from_millis(5));
                    }
                    1 => {
                        if !flag.load(cx, |f| *f) {
                            return Step::Sleep(SimDuration::from_millis(1));
                        }
                        phase = 2;
                    }
                    2 => match b.lock_step(cx) {
                        Ok(()) => phase = 3,
                        Err(step) => return step,
                    },
                    _ => {
                        // BUG: guards the same table with a *different*
                        // lock than t1 uses.
                        table.write(cx, |t| *t += 1);
                        b.unlock(cx);
                        return Step::Done;
                    }
                }
            }),
            SpawnOptions::new(),
        );
        k.run();
    })
}

/// A forged trace in which a fault re-ranks the cores (core 0 drops to
/// 1/8 speed, core 1 recovers to full) and a later wakeup still lands
/// the thread on core 0 — a dispatch consulting the **stale** speed
/// ranking. The real asymmetry-aware kernel re-ranks eagerly, so the
/// history is rewritten by hand on top of a genuinely captured
/// aware-policy trace (keeping the machine/policy metadata authentic),
/// like [`offline_core_dispatch`].
pub fn stale_ranking_dispatch() -> KernelTrace {
    let mut trace = capture_one(|| {
        let machine = MachineSpec::asymmetric(1, 1, Speed::fraction_of_full(8));
        let mut k = Kernel::new(machine, SchedPolicy::asymmetry_aware(), 10);
        k.spawn(FnThread::new("w", |_cx| Step::Done), SpawnOptions::new());
        k.run();
    });
    let tid = trace
        .records()
        .find_map(|r| match r.event {
            TraceEvent::Spawn { tid, .. } => Some(tid),
            _ => None,
        })
        .expect("captured trace has a spawn");
    let t = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
    trace.set_records(vec![
        TraceRecord {
            time: t(0),
            event: TraceEvent::Spawn {
                tid,
                core: CoreId(0),
                affinity: CoreMask::ALL,
                parent: None,
            },
        },
        TraceRecord {
            time: t(1),
            event: TraceEvent::Dispatch {
                tid,
                core: CoreId(0),
            },
        },
        // The fault re-rank: core 0 collapses to 1/8, core 1 recovers.
        TraceRecord {
            time: t(2),
            event: TraceEvent::SpeedChange {
                core: CoreId(0),
                speed: Speed::fraction_of_full(8),
            },
        },
        TraceRecord {
            time: t(2),
            event: TraceEvent::SpeedChange {
                core: CoreId(1),
                speed: Speed::FULL,
            },
        },
        TraceRecord {
            time: t(3),
            event: TraceEvent::Sleep { tid },
        },
        // BUG (planted): the wakeup placement still uses the old
        // ranking and parks the thread on the now-slow core 0 while the
        // now-fast core 1 sits idle.
        TraceRecord {
            time: t(4),
            event: TraceEvent::Wakeup {
                tid,
                core: CoreId(0),
                reason: WakeReason::Timer,
            },
        },
    ]);
    trace
}

/// Captures a minimal aware-policy run on a 1-fast/1-slow machine and
/// returns the trace plus the worker's thread id, ready for history
/// rewriting (the [`stale_ranking_dispatch`] idiom).
fn forged_aware_base() -> (KernelTrace, asym_kernel::ThreadId) {
    let trace = capture_one(|| {
        let machine = MachineSpec::asymmetric(1, 1, Speed::fraction_of_full(8));
        let mut k = Kernel::new(machine, SchedPolicy::asymmetry_aware(), 10);
        k.spawn(FnThread::new("w", |_cx| Step::Done), SpawnOptions::new());
        k.run();
    });
    let tid = trace
        .records()
        .find_map(|r| match r.event {
            TraceEvent::Spawn { tid, .. } => Some(tid),
            _ => None,
        })
        .expect("captured trace has a spawn");
    (trace, tid)
}

/// A forged trace in which a `SpeedChange` reorders the online-core
/// speed ranking (the fast core collapses below the slow one, which
/// thereby overtakes it) but the kernel never emits the confirming
/// `Rerank` record — the bug class where a speed-change path skips the
/// re-rank announcement and every downstream consumer keeps acting on a
/// stale ranking. The run continues well past the staleness bound, so
/// the hygiene checker must flag it.
pub fn missing_rerank() -> KernelTrace {
    let (mut trace, tid) = forged_aware_base();
    let t = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
    trace.set_records(vec![
        TraceRecord {
            time: t(0),
            event: TraceEvent::Spawn {
                tid,
                core: CoreId(0),
                affinity: CoreMask::ALL,
                parent: None,
            },
        },
        TraceRecord {
            time: t(1),
            event: TraceEvent::Dispatch {
                tid,
                core: CoreId(0),
            },
        },
        // BUG (planted): the ranking inverts — core 0 collapses below
        // the slow core — and no Rerank record ever follows.
        TraceRecord {
            time: t(2),
            event: TraceEvent::SpeedChange {
                core: CoreId(0),
                speed: Speed::fraction_of_full(16),
            },
        },
        TraceRecord {
            time: t(8),
            event: TraceEvent::Done { tid },
        },
    ]);
    trace
}

/// A forged trace in which the speed ranking flaps: core 0 bounces
/// between full speed and below the slow core ten times inside one
/// millisecond, each flip dutifully announced with a `Rerank` — churn
/// the environment hysteresis (confirmation ticks plus a per-core
/// minimum apply interval) is supposed to make impossible. The hygiene
/// checker must report the thrash.
pub fn rerank_thrash() -> KernelTrace {
    let (mut trace, tid) = forged_aware_base();
    let mut records = vec![
        TraceRecord {
            time: SimTime::ZERO,
            event: TraceEvent::Spawn {
                tid,
                core: CoreId(0),
                affinity: CoreMask::ALL,
                parent: None,
            },
        },
        TraceRecord {
            time: SimTime::ZERO + SimDuration::from_millis(1),
            event: TraceEvent::Dispatch {
                tid,
                core: CoreId(0),
            },
        },
    ];
    for flip in 0..10u64 {
        let at = SimTime::ZERO + SimDuration::from_millis(2) + SimDuration::from_micros(100 * flip);
        let speed = if flip % 2 == 0 {
            // Below the slow core's 1/8: the ranking inverts.
            Speed::fraction_of_full(16)
        } else {
            Speed::FULL
        };
        records.push(TraceRecord {
            time: at,
            event: TraceEvent::SpeedChange {
                core: CoreId(0),
                speed,
            },
        });
        records.push(TraceRecord {
            time: at,
            event: TraceEvent::Rerank { core: CoreId(0) },
        });
    }
    records.push(TraceRecord {
        time: SimTime::ZERO + SimDuration::from_millis(4),
        event: TraceEvent::Done { tid },
    });
    trace.set_records(records);
    trace
}

/// A forged trace of a work-stealing balancer bolted onto the
/// asymmetry-aware contract: on a 2-fast/1-slow machine the stealer
/// takes a queued thread **from a faster busy core onto the slower idle
/// core** (the downhill steal, record #5), then keeps feeding the slow
/// core — the next wakeup lands there while both fast cores sit idle.
/// The stale-ranking lint must flag the placement: the steal-driven
/// queue state does not excuse ignoring the speed ranking. The trace
/// carries the aware policy metadata (the contract being linted); the
/// history is rewritten by hand like [`stale_ranking_dispatch`].
pub fn downhill_steal() -> KernelTrace {
    let mut trace = capture_one(|| {
        let machine = MachineSpec::asymmetric(2, 1, Speed::fraction_of_full(8));
        let mut k = Kernel::new(machine, SchedPolicy::asymmetry_aware(), 11);
        for name in ["w", "v"] {
            k.spawn(FnThread::new(name, |_cx| Step::Done), SpawnOptions::new());
        }
        k.run();
    });
    let tids: Vec<_> = trace
        .records()
        .filter_map(|r| match r.event {
            TraceEvent::Spawn { tid, .. } => Some(tid),
            _ => None,
        })
        .collect();
    let (w, v) = (tids[0], tids[1]);
    let t = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
    let spawn = |tid, core| TraceEvent::Spawn {
        tid,
        core: CoreId(core),
        affinity: CoreMask::ALL,
        parent: None,
    };
    trace.set_records(vec![
        TraceRecord {
            time: t(0),
            event: spawn(w, 0),
        },
        TraceRecord {
            time: t(1),
            event: TraceEvent::Dispatch {
                tid: w,
                core: CoreId(0),
            },
        },
        TraceRecord {
            time: t(1),
            event: spawn(v, 1),
        },
        TraceRecord {
            time: t(2),
            event: TraceEvent::Dispatch {
                tid: v,
                core: CoreId(1),
            },
        },
        TraceRecord {
            time: t(3),
            event: TraceEvent::Preempt {
                tid: v,
                core: CoreId(1),
                reason: asym_kernel::PreemptReason::Quantum,
            },
        },
        // BUG (planted): the stealer moves v from the fast busy core 1
        // onto the slow idle core 2.
        TraceRecord {
            time: t(3),
            event: TraceEvent::Steal {
                tid: v,
                from: CoreId(1),
                to: CoreId(2),
            },
        },
        TraceRecord {
            time: t(4),
            event: TraceEvent::Sleep { tid: w },
        },
        // BUG (consequence): the next wakeup follows the stolen work to
        // the slow core while fast cores 0 and 1 are idle and eligible.
        TraceRecord {
            time: t(5),
            event: TraceEvent::Wakeup {
                tid: w,
                core: CoreId(2),
                reason: WakeReason::Timer,
            },
        },
    ]);
    trace
}

/// A forged vruntime-fair trace in which one thread starves: thread `a`
/// is spawned runnable on core 0 and then sits queued for 220 ms while
/// threads `b` and `c` are dispatched there 220 times between them —
/// far past the [`STARVATION_BOUND`](crate::hb::STARVATION_BOUND) and
/// [`STARVATION_MIN_BYPASSES`](crate::hb::STARVATION_MIN_BYPASSES)
/// limits. A real lowest-progress-first scheduler can never do this
/// (a waiting thread's progress never advances, so it wins the queue),
/// so the history is rewritten by hand like [`stale_ranking_dispatch`].
pub fn vruntime_starvation() -> KernelTrace {
    let mut trace = capture_one(|| {
        let machine = MachineSpec::symmetric(1, Speed::FULL);
        let mut k = Kernel::new(machine, SchedPolicy::vruntime_fair(), 12);
        for name in ["a", "b", "c"] {
            k.spawn(FnThread::new(name, |_cx| Step::Done), SpawnOptions::new());
        }
        k.run();
    });
    let tids: Vec<_> = trace
        .records()
        .filter_map(|r| match r.event {
            TraceEvent::Spawn { tid, .. } => Some(tid),
            _ => None,
        })
        .collect();
    let (a, b, c) = (tids[0], tids[1], tids[2]);
    let t = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
    let spawn = |tid| TraceEvent::Spawn {
        tid,
        core: CoreId(0),
        affinity: CoreMask::ALL,
        parent: None,
    };
    let mut records: Vec<TraceRecord> = [a, b, c]
        .into_iter()
        .map(|tid| TraceRecord {
            time: t(0),
            event: spawn(tid),
        })
        .collect();
    // BUG (planted): 110 rounds of b/c round-robin, never once picking
    // the equally-runnable a.
    for round in 0..110u64 {
        for (slot, tid) in [(0, b), (1, c)] {
            records.push(TraceRecord {
                time: t(2 * round + slot),
                event: TraceEvent::Dispatch {
                    tid,
                    core: CoreId(0),
                },
            });
            records.push(TraceRecord {
                time: t(2 * round + slot + 1),
                event: TraceEvent::Preempt {
                    tid,
                    core: CoreId(0),
                    reason: asym_kernel::PreemptReason::Quantum,
                },
            });
        }
    }
    trace.set_records(records);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_kernel::RunOutcome;

    #[test]
    fn fixtures_have_expected_outcomes() {
        assert_eq!(lock_order_inversion().outcome, Some(RunOutcome::AllDone));
        assert!(matches!(
            ab_ba_deadlock().outcome,
            Some(RunOutcome::Deadlock(2))
        ));
        assert!(matches!(
            missed_signal().outcome,
            Some(RunOutcome::Deadlock(1))
        ));
    }

    #[test]
    fn missed_signal_trace_contains_empty_signal() {
        let trace = missed_signal();
        assert!(trace
            .records()
            .any(|r| matches!(r.event, TraceEvent::Signal { woken: 0, .. })));
    }

    #[test]
    fn stalled_fixture_ends_stalled() {
        assert_eq!(stalled_run().outcome, Some(RunOutcome::Stalled));
    }

    #[test]
    fn traces_tag_wakeup_and_preempt_reasons() {
        use asym_kernel::{PreemptReason, WakeReason};
        // Timer wakeups: the stalled poller sleeps and is rearmed by
        // its timer, never by a signal.
        assert!(stalled_run().records().any(|r| matches!(
            r.event,
            TraceEvent::Wakeup {
                reason: WakeReason::Timer,
                ..
            }
        )));
        // Signal wakeups: two same-order lockers contend, so the second
        // blocks on the first lock and is woken by the unlock handoff.
        let contended = capture_one(|| {
            let mut k = Kernel::new(
                MachineSpec::symmetric(2, Speed::FULL),
                SchedPolicy::os_default(),
                3,
            );
            let a = SimMutex::new(&mut k);
            let b = SimMutex::new(&mut k);
            let hold = Cycles::from_millis_at_full_speed(2.0);
            k.spawn(
                ordered_locker("t1", a.clone(), b.clone(), SimDuration::ZERO, hold),
                SpawnOptions::new(),
            );
            k.spawn(
                ordered_locker("t2", a, b, SimDuration::ZERO, hold),
                SpawnOptions::new(),
            );
            k.run();
        });
        assert!(contended.records().any(|r| matches!(
            r.event,
            TraceEvent::Wakeup {
                reason: WakeReason::Signal,
                ..
            }
        )));
        // Quantum-expiry markers: two multi-quantum compute threads
        // contending for a single core must be timesliced.
        let trace = capture_one(|| {
            let mut k = Kernel::new(
                MachineSpec::symmetric(1, Speed::FULL),
                SchedPolicy::os_default(),
                7,
            );
            for name in ["a", "b"] {
                let mut left = 3u32;
                k.spawn(
                    FnThread::new(name, move |_cx| {
                        if left == 0 {
                            Step::Done
                        } else {
                            left -= 1;
                            Step::Compute(Cycles::from_millis_at_full_speed(5.0))
                        }
                    }),
                    SpawnOptions::new(),
                );
            }
            k.run();
        });
        assert!(trace.records().any(|r| matches!(
            r.event,
            TraceEvent::Preempt {
                reason: PreemptReason::Quantum,
                ..
            }
        )));
    }

    #[test]
    fn swallowed_kill_fixture_has_a_kill_but_no_done() {
        let trace = swallowed_kill();
        assert!(trace
            .records()
            .any(|r| matches!(r.event, TraceEvent::ThreadKilled { .. })));
        assert!(!trace
            .records()
            .any(|r| matches!(r.event, TraceEvent::Done { .. })));
    }

    #[test]
    fn race_fixture_fires_data_race_with_both_sites() {
        let trace = unprotected_write_race();
        let violations = crate::hb::check_concurrency(&trace);
        let v = violations
            .iter()
            .find(|v| v.kind == crate::ViolationKind::DataRace)
            .expect("unprotected write race must be detected");
        assert!(v.object.contains("fixture.counter"), "object: {}", v.object);
        let (a, b) = v
            .site
            .split_once("->")
            .expect("race diagnostics cite both access sites");
        assert!(a.starts_with('#') && b.starts_with('#'), "site: {}", v.site);
    }

    #[test]
    fn lockset_fixture_fires_inconsistent_lockset_and_nothing_else() {
        let trace = lockset_violation();
        let violations = crate::hb::check_concurrency(&trace);
        let v = violations
            .iter()
            .find(|v| v.kind == crate::ViolationKind::InconsistentLockSet)
            .expect("inconsistent lock sets must be detected");
        assert!(v.object.contains("fixture.table"), "object: {}", v.object);
        assert!(
            v.site.contains("->"),
            "site cites both accesses: {}",
            v.site
        );
        // The atomic flag hand-off orders the critical sections, so the
        // race detector must stay quiet: the lock-set finding is not a
        // shadow of a data race.
        assert!(
            !violations
                .iter()
                .any(|v| v.kind == crate::ViolationKind::DataRace),
            "lockset fixture must not also race: {violations:?}"
        );
    }

    #[test]
    fn stale_ranking_fixture_fires_citing_rerank_and_placement() {
        let trace = stale_ranking_dispatch();
        let violations = crate::hb::check_concurrency(&trace);
        let v = violations
            .iter()
            .find(|v| v.kind == crate::ViolationKind::StaleRanking)
            .expect("stale-ranking dispatch must be detected");
        // Site cites the re-rank (record #3, the second SpeedChange) and
        // the offending wakeup placement (record #5).
        assert_eq!(v.site, "#3->#5", "message: {}", v.message);
        assert!(v.object.contains("core0"), "object: {}", v.object);
    }

    #[test]
    fn missing_rerank_fixture_fires_stale_rerank() {
        let trace = missing_rerank();
        let violations = crate::hb::check_concurrency(&trace);
        let v = violations
            .iter()
            .find(|v| v.kind == crate::ViolationKind::StaleRerank)
            .expect("unannounced re-rank must be detected");
        // The offending SpeedChange is record #2.
        assert_eq!(v.site, "#2", "message: {}", v.message);
        assert!(v.object.contains("core0"), "object: {}", v.object);
    }

    #[test]
    fn rerank_thrash_fixture_fires_thrash_and_not_staleness() {
        let trace = rerank_thrash();
        let violations = crate::hb::check_concurrency(&trace);
        assert!(
            violations
                .iter()
                .any(|v| v.kind == crate::ViolationKind::RerankThrash),
            "ranking churn must be detected: {violations:?}"
        );
        // Every flip was announced, so no staleness finding rides along.
        assert!(
            !violations
                .iter()
                .any(|v| v.kind == crate::ViolationKind::StaleRerank),
            "announced re-ranks misread as stale: {violations:?}"
        );
    }

    #[test]
    fn downhill_steal_fixture_fires_stale_ranking() {
        let trace = downhill_steal();
        // The narrative artifact is really there: a steal off a faster
        // busy core onto the slower idle core.
        assert!(trace.records().any(|r| matches!(
            r.event,
            TraceEvent::Steal {
                from: CoreId(1),
                to: CoreId(2),
                ..
            }
        )));
        let violations = crate::hb::check_concurrency(&trace);
        let v = violations
            .iter()
            .find(|v| v.kind == crate::ViolationKind::StaleRanking)
            .expect("downhill-steal placement must be detected");
        assert!(v.object.contains("core2"), "object: {}", v.object);
    }

    #[test]
    fn vruntime_starvation_fixture_fires_starvation_only() {
        let trace = vruntime_starvation();
        let violations = crate::hb::check_concurrency(&trace);
        let v = violations
            .iter()
            .find(|v| v.kind == crate::ViolationKind::Starvation)
            .expect("starved thread must be detected");
        assert!(v.object.contains("thread"), "object: {}", v.object);
        assert!(v.site.ends_with("->end"), "site: {}", v.site);
        // The vruntime policy is outside the asymmetry-aware lints'
        // scope, so starvation is the only finding.
        assert_eq!(violations.len(), 1, "unexpected extras: {violations:?}");
    }

    #[test]
    fn starvation_lint_ignores_non_vruntime_policies() {
        // The same starved history under the stock policy is out of the
        // fairness lint's scope: FIFO queues order by arrival, and the
        // priority policy starves by design.
        let mut trace = vruntime_starvation();
        trace.policy = SchedPolicy::os_default();
        assert!(crate::hb::check_starvation(&trace).is_empty());
    }

    #[test]
    fn pre_existing_fixtures_are_concurrency_clean() {
        for trace in [
            lock_order_inversion(),
            ab_ba_deadlock(),
            missed_signal(),
            stalled_run(),
        ] {
            assert_eq!(crate::hb::check_concurrency(&trace), Vec::new());
        }
    }

    #[test]
    fn real_dynamic_runs_pass_rerank_hygiene() {
        use asym_sim::{EnvironmentPlan, EnvironmentProfile, FaultPlan, FaultProfile};
        // A genuine kernel under both continuous dynamics and discrete
        // faults announces every re-rank and is hysteresis-damped: the
        // hygiene lint must find nothing.
        let horizon = SimDuration::from_millis(60);
        let env = EnvironmentPlan::generate(3, 4, &EnvironmentProfile::combined(horizon));
        let faults = FaultPlan::generate(3, 4, &FaultProfile::hotplug_and_throttle(horizon));
        let trace = capture_one(|| {
            let mut k = Kernel::new(
                MachineSpec::asymmetric(2, 2, Speed::fraction_of_full(4)),
                SchedPolicy::asymmetry_aware(),
                3,
            );
            k.set_environment(&env);
            k.set_fault_plan(&faults);
            for t in 0..6 {
                let mut left = 10u32;
                k.spawn(
                    FnThread::new(format!("w{t}"), move |_cx| {
                        if left == 0 {
                            Step::Done
                        } else {
                            left -= 1;
                            Step::Compute(Cycles::from_millis_at_full_speed(1.0))
                        }
                    }),
                    SpawnOptions::new(),
                );
            }
            k.run();
        });
        assert!(trace
            .records()
            .any(|r| matches!(r.event, TraceEvent::Rerank { .. })));
        let found = crate::hb::check_rerank_hygiene(&trace);
        assert!(found.is_empty(), "unexpected: {found:?}");
    }

    #[test]
    fn offline_dispatch_fixture_contains_the_planted_bug() {
        let trace = offline_core_dispatch();
        let off = trace
            .records()
            .position(|r| matches!(r.event, TraceEvent::CoreOffline { .. }))
            .expect("fixture has a CoreOffline");
        assert!(trace.records_vec()[off + 1..].iter().any(|r| matches!(
            r.event,
            TraceEvent::Dispatch {
                core: CoreId(1),
                ..
            }
        )));
    }
}
