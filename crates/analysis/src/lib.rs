//! # asym-analysis
//!
//! A lockdep/TSan-style concurrency checker over simulated-kernel traces.
//!
//! Every `asym-kernel` run can be recorded with
//! [`capture_traces`]; the resulting
//! [`KernelTrace`] is a state-complete event stream. This crate replays
//! such streams and checks eight properties:
//!
//! 1. **Deadlock detection** — a live wait-for graph over mutex
//!    ownership; a cycle at the moment a thread blocks is reported as
//!    [`ViolationKind::Deadlock`].
//! 2. **Lock-order checking** (lockdep) — every ordered pair of locks
//!    held together is recorded; observing both `(A, B)` and `(B, A)`
//!    is a *potential* deadlock even if this run got lucky, reported as
//!    [`ViolationKind::LockOrderInversion`].
//! 3. **Lost-wakeup detection** — a thread that blocks forever on a
//!    non-lock wait queue whose only signal arrived *before* the block
//!    (classic missed-signal condvar bug), reported as
//!    [`ViolationKind::LostWakeup`].
//! 4. **Asymmetry invariant** — under
//!    [`SchedPolicy::asymmetry_aware`](asym_kernel::SchedPolicy), a fast
//!    core must never sit idle while a strictly slower core's run queue
//!    holds a thread allowed to run on the fast core (§3.4 of the
//!    paper); reported as [`ViolationKind::FastCoreIdle`]. Mid-run
//!    `SpeedChange` faults re-rank the cores, so the invariant is
//!    checked against the *post-change* fast set.
//! 5. **Core liveness** — no thread is ever dispatched to (or parked
//!    on) a core that a hotplug fault took offline, reported as
//!    [`ViolationKind::OfflineDispatch`]. The replay tracks
//!    `CoreOffline`/`CoreOnline` trace events, so the check follows the
//!    *dynamic* core set, not the static machine shape.
//! 6. **Forward progress** — a run the kernel's watchdog gave up on
//!    ([`RunOutcome::Stalled`]) is reported as
//!    [`ViolationKind::StalledRun`]; a trace that simply ends at its
//!    time limit is not.
//! 7. **Kill accounting** — every `ThreadKilled` record must be
//!    followed by a `Done` record retiring the victim; a kill the
//!    kernel never accounted for (the bug class where a fault-injected
//!    kill silently vanishes and the run's `lost_workers` undercounts)
//!    is reported as [`ViolationKind::DroppedKill`].
//! 8. **Determinism** — running the same seeded program twice must
//!    produce byte-identical traces
//!    ([`KernelTrace::stable_hash`]); any divergence is
//!    [`ViolationKind::NonDeterminism`].
//!
//! [`check_workload`] packages all eight for one workload run, and the
//! `asym-check` binary in `asym-bench` sweeps every workload across the
//! paper's nine machine configurations. The [`fixtures`] module holds
//! deliberately buggy programs proving each detector fires.
//!
//! # Examples
//!
//! ```
//! use asym_analysis::{analyze_trace, fixtures};
//!
//! // A seeded AB/BA lock-order fixture: no deadlock this run, but the
//! // inversion is latent and lockdep flags it.
//! let trace = fixtures::lock_order_inversion();
//! let violations = analyze_trace(&trace);
//! assert!(violations
//!     .iter()
//!     .any(|v| v.kind == asym_analysis::ViolationKind::LockOrderInversion));
//! ```

use asym_core::{RunResult, RunSetup, Workload};
use asym_kernel::{capture_traces, RunOutcome, ThreadId, TraceEvent, WaitId};
use asym_sim::{CoreId, CoreMask, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

pub mod fixtures;
pub mod hb;

pub use asym_kernel::{KernelTrace, TraceRecord};

/// The class of concurrency defect a [`Violation`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A cycle in the wait-for graph: the run is wedged.
    Deadlock,
    /// Two locks were taken in both orders across the run — a potential
    /// deadlock even when this particular schedule survived.
    LockOrderInversion,
    /// A thread blocked forever on a wait queue whose signal had
    /// already fired (missed-signal bug).
    LostWakeup,
    /// A fast core idled while a strictly slower core's run queue held
    /// work it could have taken (asymmetry-aware invariant breach).
    FastCoreIdle,
    /// A thread was dispatched to, or left parked on, a core that a
    /// hotplug fault had taken offline.
    OfflineDispatch,
    /// The kernel's watchdog declared the run livelocked: simulated time
    /// kept advancing but no work was retired for a full window.
    StalledRun,
    /// A thread was killed but never retired: the trace holds a
    /// `ThreadKilled` with no matching `Done`, so the kill was silently
    /// swallowed and lost-worker accounting undercounts.
    DroppedKill,
    /// The same seeded program produced two different traces.
    NonDeterminism,
    /// Two plain accesses to the same shared word are unordered by the
    /// happens-before relation (vector-clock data race).
    DataRace,
    /// A shared object accessed by multiple lock-holding threads has no
    /// common lock protecting every access (Eraser-style lock-set
    /// violation).
    InconsistentLockSet,
    /// Under the asymmetry-aware policy, a thread was placed on a core
    /// that the speed ranking in force at that instant does not justify —
    /// an idle, eligible, strictly faster core existed (e.g. a dispatch
    /// used a ranking stale since a fault re-rank).
    StaleRanking,
    /// A speed change reordered the online-core speed ranking but no
    /// `Rerank` record confirmed it within the staleness bound — the
    /// kernel kept scheduling against a ranking it knew was stale.
    StaleRerank,
    /// The speed ranking reordered more often than the thrash limit
    /// allows within one window — re-ranking churn that defeats the
    /// hysteresis contract and migrates threads for no stable reason.
    RerankThrash,
    /// Under a fair-share policy, a runnable thread sat continuously
    /// queued past the starvation bound while the scheduler dispatched
    /// other threads on its core many times over — the fairness
    /// invariant (lowest-progress thread runs next) was not honoured.
    Starvation,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::LockOrderInversion => "lock-order-inversion",
            ViolationKind::LostWakeup => "lost-wakeup",
            ViolationKind::FastCoreIdle => "fast-core-idle",
            ViolationKind::OfflineDispatch => "offline-dispatch",
            ViolationKind::StalledRun => "stalled-run",
            ViolationKind::DroppedKill => "dropped-kill",
            ViolationKind::NonDeterminism => "non-determinism",
            ViolationKind::DataRace => "data-race",
            ViolationKind::InconsistentLockSet => "inconsistent-lock-set",
            ViolationKind::StaleRanking => "stale-ranking",
            ViolationKind::StaleRerank => "stale-rerank",
            ViolationKind::RerankThrash => "rerank-thrash",
            ViolationKind::Starvation => "starvation",
        };
        f.write_str(s)
    }
}

/// One concurrency violation found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// What kind of defect this is.
    pub kind: ViolationKind,
    /// The simulated time at which the defect manifested, when it has
    /// one (lock-order inversions and non-determinism are properties of
    /// the whole run).
    pub time: Option<SimTime>,
    /// Human-readable description naming the threads and queues involved.
    pub message: String,
    /// The entity the violation is about (a shared object, lock, core,
    /// or thread), normalized for stable ordering and deduplication.
    /// Empty when the defect has no single anchor object.
    pub object: String,
    /// The trace site(s) anchoring the violation, as `#index` record
    /// references (e.g. `"#120->#348"` for a racy access pair). Empty
    /// for whole-run properties.
    pub site: String,
}

impl Violation {
    /// A violation with no structured object/site anchors (whole-run
    /// properties and checks predating the happens-before engine).
    pub fn new(kind: ViolationKind, time: Option<SimTime>, message: impl Into<String>) -> Self {
        Violation {
            kind,
            time,
            message: message.into(),
            object: String::new(),
            site: String::new(),
        }
    }

    /// Sets the anchor object (builder style).
    pub fn with_object(mut self, object: impl Into<String>) -> Self {
        self.object = object.into();
        self
    }

    /// Sets the anchor trace site(s) (builder style).
    pub fn with_site(mut self, site: impl Into<String>) -> Self {
        self.site = site.into();
        self
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.time {
            Some(t) => write!(f, "[{}] at {}: {}", self.kind, t, self.message)?,
            None => write!(f, "[{}] {}", self.kind, self.message)?,
        }
        if !self.site.is_empty() {
            write!(f, " [{}]", self.site)?;
        }
        Ok(())
    }
}

/// Sorts violations into the canonical (kind, object, site) order and
/// drops duplicates, so reports are bounded and byte-identical no matter
/// how many host threads produced them. Violations without structured
/// anchors (both `object` and `site` empty) are deduplicated by message
/// instead, preserving distinct findings from the older checkers.
pub fn normalize_violations(mut violations: Vec<Violation>) -> Vec<Violation> {
    fn key(v: &Violation) -> (String, String, String, String) {
        let tail = if v.object.is_empty() && v.site.is_empty() {
            v.message.clone()
        } else {
            String::new()
        };
        (v.kind.to_string(), v.object.clone(), v.site.clone(), tail)
    }
    violations.sort_by(|a, b| key(a).cmp(&key(b)).then_with(|| a.message.cmp(&b.message)));
    violations.dedup_by(|a, b| key(a) == key(b));
    violations
}

/// Runs analyses 1–7 (deadlock, lock order, lost wakeup, asymmetry
/// invariant, core liveness, forward progress, kill accounting) over
/// one captured trace.
///
/// The returned violations are in a deterministic order: detection
/// order for the replay-driven checks, then lost wakeups by thread.
pub fn analyze_trace(trace: &KernelTrace) -> Vec<Violation> {
    let locks = lock_wait_ids(trace);
    let mut violations = Vec::new();
    violations.extend(detect_deadlocks(trace, &locks));
    violations.extend(check_lock_order(trace, &locks));
    violations.extend(detect_lost_wakeups(trace, &locks));
    violations.extend(check_asymmetry_invariant(trace));
    violations.extend(check_core_liveness(trace));
    violations.extend(check_forward_progress(trace));
    violations.extend(check_kill_accounting(trace));
    violations
}

/// The wait queues that back mutexes: every queue named by a
/// `LockAcquire` anywhere in the trace.
fn lock_wait_ids(trace: &KernelTrace) -> HashSet<WaitId> {
    trace
        .records()
        .filter_map(|r| match r.event {
            TraceEvent::LockAcquire { lock, .. } => Some(lock),
            _ => None,
        })
        .collect()
}

// ----------------------------------------------------------------------
// 1. Deadlock detection: live wait-for graph
// ----------------------------------------------------------------------

/// Replays lock ownership and lock waits; whenever a thread blocks on a
/// held lock, walks owner→waits-on edges looking for a cycle back to
/// the blocking thread. Each distinct cycle (as a thread set) is
/// reported once.
fn detect_deadlocks(trace: &KernelTrace, locks: &HashSet<WaitId>) -> Vec<Violation> {
    let mut owner: HashMap<WaitId, ThreadId> = HashMap::new();
    let mut waiting: HashMap<ThreadId, WaitId> = HashMap::new();
    let mut reported: HashSet<Vec<ThreadId>> = HashSet::new();
    let mut violations = Vec::new();

    for r in trace.records() {
        match r.event {
            TraceEvent::LockAcquire { tid, lock, .. } => {
                owner.insert(lock, tid);
                waiting.remove(&tid);
            }
            TraceEvent::LockRelease { lock, .. } => {
                owner.remove(&lock);
            }
            TraceEvent::Wakeup { tid, .. } => {
                waiting.remove(&tid);
            }
            // A killed thread stops waiting; any lock it owned stays
            // taken, which later blockers will report as a deadlock.
            TraceEvent::ThreadKilled { tid } => {
                waiting.remove(&tid);
            }
            TraceEvent::Block { tid, wait } if locks.contains(&wait) => {
                waiting.insert(tid, wait);
                if let Some(cycle) = find_cycle(tid, &waiting, &owner) {
                    let mut key = cycle.clone();
                    key.sort_unstable();
                    if reported.insert(key) {
                        let chain: Vec<String> = cycle
                            .iter()
                            .map(|t| format!("{t} waits for {}", waiting[t]))
                            .collect();
                        violations.push(Violation {
                            object: String::new(),
                            site: String::new(),
                            kind: ViolationKind::Deadlock,
                            time: Some(r.time),
                            message: format!(
                                "wait-for cycle among {} threads: {}",
                                cycle.len(),
                                chain.join(", ")
                            ),
                        });
                    }
                }
            }
            _ => {}
        }
    }
    violations
}

/// Follows `start`'s waits-on → owned-by chain; returns the member
/// threads if it closes back on `start`.
fn find_cycle(
    start: ThreadId,
    waiting: &HashMap<ThreadId, WaitId>,
    owner: &HashMap<WaitId, ThreadId>,
) -> Option<Vec<ThreadId>> {
    let mut path = vec![start];
    let mut seen: HashSet<ThreadId> = HashSet::from([start]);
    let mut cur = start;
    loop {
        let lock = waiting.get(&cur)?;
        let next = *owner.get(lock)?;
        if next == start {
            return Some(path);
        }
        if !seen.insert(next) {
            // Cycle that does not include `start`; it was (or will be)
            // reported when one of its own members blocked.
            return None;
        }
        path.push(next);
        cur = next;
    }
}

// ----------------------------------------------------------------------
// 2. Lockdep-style lock-order checking
// ----------------------------------------------------------------------

/// Records, for every lock acquisition *or blocking attempt*, the
/// ordered pairs (held, wanted); a pair observed in both directions is
/// a potential deadlock (as in Linux lockdep, the dependency is formed
/// the moment a thread reaches for the inner lock, acquired or not).
/// Each unordered lock pair is reported once, with both witness times.
fn check_lock_order(trace: &KernelTrace, locks: &HashSet<WaitId>) -> Vec<Violation> {
    let mut held: HashMap<ThreadId, Vec<WaitId>> = HashMap::new();
    // (outer, inner) -> first time the order was observed.
    let mut orders: HashMap<(WaitId, WaitId), SimTime> = HashMap::new();
    let mut reported: HashSet<(WaitId, WaitId)> = HashSet::new();
    let mut violations = Vec::new();

    let mut record_attempt = |held: &HashMap<ThreadId, Vec<WaitId>>,
                              tid: ThreadId,
                              lock: WaitId,
                              time: SimTime,
                              violations: &mut Vec<Violation>| {
        let Some(stack) = held.get(&tid) else { return };
        for &outer in stack {
            if outer == lock {
                continue;
            }
            orders.entry((outer, lock)).or_insert(time);
            if let Some(&earlier) = orders.get(&(lock, outer)) {
                let key = (outer.min(lock), outer.max(lock));
                if reported.insert(key) {
                    violations.push(Violation {
                        object: String::new(),
                        site: String::new(),
                        kind: ViolationKind::LockOrderInversion,
                        time: None,
                        message: format!(
                            "{outer} and {lock} are taken in both orders ({lock} before \
                             {outer} at {earlier}, {outer} before {lock} at {time}): \
                             potential deadlock"
                        ),
                    });
                }
            }
        }
    };

    for r in trace.records() {
        match r.event {
            TraceEvent::LockAcquire { tid, lock, .. } => {
                record_attempt(&held, tid, lock, r.time, &mut violations);
                held.entry(tid).or_default().push(lock);
            }
            TraceEvent::Block { tid, wait } if locks.contains(&wait) => {
                record_attempt(&held, tid, wait, r.time, &mut violations);
            }
            TraceEvent::LockRelease { tid, lock } => {
                if let Some(stack) = held.get_mut(&tid) {
                    if let Some(pos) = stack.iter().rposition(|&l| l == lock) {
                        stack.remove(pos);
                    }
                }
            }
            _ => {}
        }
    }
    violations
}

// ----------------------------------------------------------------------
// 3. Lost-wakeup detection
// ----------------------------------------------------------------------

/// For traces that ended deadlocked: a thread still blocked on a
/// *non-lock* queue, where some signal on that queue fired before the
/// block and woke nobody, and no signal arrived after — the blocked
/// thread missed its wakeup. (Lock waits are excluded: a thread stuck
/// on a mutex is the deadlock detector's business.)
fn detect_lost_wakeups(trace: &KernelTrace, locks: &HashSet<WaitId>) -> Vec<Violation> {
    if !matches!(trace.outcome, Some(RunOutcome::Deadlock(_))) {
        return Vec::new();
    }
    // Thread -> (wait queue, index and time of the Block record).
    let mut blocked: BTreeMap<ThreadId, (WaitId, usize, SimTime)> = BTreeMap::new();
    // Wait queue -> record indices of empty (woken == 0) / all signals.
    let mut empty_signals: HashMap<WaitId, Vec<usize>> = HashMap::new();
    let mut any_signals: HashMap<WaitId, Vec<usize>> = HashMap::new();

    for (i, r) in trace.records().enumerate() {
        match r.event {
            TraceEvent::Block { tid, wait } => {
                blocked.insert(tid, (wait, i, r.time));
            }
            TraceEvent::Wakeup { tid, .. } | TraceEvent::ThreadKilled { tid } => {
                blocked.remove(&tid);
            }
            TraceEvent::Signal { wait, woken, .. } => {
                any_signals.entry(wait).or_default().push(i);
                if woken == 0 {
                    empty_signals.entry(wait).or_default().push(i);
                }
            }
            _ => {}
        }
    }

    let mut violations = Vec::new();
    for (tid, (wait, block_idx, block_time)) in blocked {
        if locks.contains(&wait) {
            continue;
        }
        let signalled_after = any_signals
            .get(&wait)
            .is_some_and(|v| v.iter().any(|&i| i > block_idx));
        let missed_before = empty_signals
            .get(&wait)
            .is_some_and(|v| v.iter().any(|&i| i < block_idx));
        if missed_before && !signalled_after {
            let time = block_time;
            violations.push(Violation {
                object: String::new(),
                site: String::new(),
                kind: ViolationKind::LostWakeup,
                time: Some(time),
                message: format!(
                    "{tid} blocked forever on {wait}; the queue was signalled with no \
                     waiters before the block and never again after it"
                ),
            });
        }
    }
    violations
}

// ----------------------------------------------------------------------
// 4. Asymmetry invariant: fast cores never idle over slower queued work
// ----------------------------------------------------------------------

/// Replayed scheduler state for the invariant lint.
struct CoreState {
    running: Option<ThreadId>,
    queue: Vec<ThreadId>,
}

/// Replays the state-complete event stream and, at every point where
/// simulated time advances, asserts that no core is idle (nothing
/// running, empty queue) while a strictly slower core's run queue holds
/// a thread whose affinity admits the idle core. Only applies to
/// asymmetry-aware traces — the stock policy makes no such promise
/// (that is the paper's point).
///
/// Dynamic asymmetry is honoured: `SpeedChange` faults re-rank the
/// cores mid-replay (the invariant always compares *current* speeds),
/// and offline cores are exempt on both sides — an offlined fast core
/// owes nobody anything, and work stranded on an offline core is the
/// core-liveness checker's business.
fn check_asymmetry_invariant(trace: &KernelTrace) -> Vec<Violation> {
    if !trace.policy.is_asymmetry_aware() {
        return Vec::new();
    }
    let mut speeds = trace.machine.speeds().to_vec();
    let mut online = vec![true; speeds.len()];
    let mut cores: Vec<CoreState> = speeds
        .iter()
        .map(|_| CoreState {
            running: None,
            queue: Vec::new(),
        })
        .collect();
    let mut affinity: HashMap<ThreadId, CoreMask> = HashMap::new();
    let mut reported: HashSet<(usize, ThreadId)> = HashSet::new();
    let mut violations = Vec::new();
    let mut cur_time = SimTime::ZERO;

    fn remove(v: &mut Vec<ThreadId>, tid: ThreadId) {
        if let Some(pos) = v.iter().position(|&t| t == tid) {
            v.remove(pos);
        }
    }

    for r in trace.records() {
        if r.time > cur_time {
            // The state we are leaving persisted for a nonzero interval:
            // check the invariant held across it.
            for fast in 0..cores.len() {
                if !online[fast] || cores[fast].running.is_some() || !cores[fast].queue.is_empty() {
                    continue;
                }
                for slow in 0..cores.len() {
                    if !online[slow] || speeds[slow] >= speeds[fast] {
                        continue;
                    }
                    for &tid in &cores[slow].queue {
                        let eligible = affinity.get(&tid).is_some_and(|m| m.contains(CoreId(fast)));
                        if eligible && reported.insert((fast, tid)) {
                            violations.push(Violation {
                                object: String::new(),
                                site: String::new(),
                                kind: ViolationKind::FastCoreIdle,
                                time: Some(cur_time),
                                message: format!(
                                    "core{fast} (speed {:.3}) idle while {tid} sat queued \
                                     on slower core{slow} (speed {:.3}) under the \
                                     asymmetry-aware policy",
                                    speeds[fast].factor(),
                                    speeds[slow].factor()
                                ),
                            });
                        }
                    }
                }
            }
            cur_time = r.time;
        }
        match r.event {
            TraceEvent::Spawn {
                tid,
                core,
                affinity: mask,
                ..
            } => {
                affinity.insert(tid, mask);
                cores[core.0].queue.push(tid);
            }
            TraceEvent::Dispatch { tid, core } => {
                remove(&mut cores[core.0].queue, tid);
                cores[core.0].running = Some(tid);
            }
            TraceEvent::Preempt { tid, core, .. } => {
                if cores[core.0].running == Some(tid) {
                    cores[core.0].running = None;
                }
                cores[core.0].queue.push(tid);
            }
            TraceEvent::Steal { tid, from, to } => {
                remove(&mut cores[from.0].queue, tid);
                cores[to.0].queue.push(tid);
            }
            TraceEvent::Wakeup { tid, core, .. } => {
                cores[core.0].queue.push(tid);
            }
            TraceEvent::Block { tid, .. }
            | TraceEvent::Sleep { tid }
            | TraceEvent::Done { tid } => {
                for c in &mut cores {
                    if c.running == Some(tid) {
                        c.running = None;
                    }
                }
            }
            TraceEvent::SetAffinity { tid, affinity: m }
            | TraceEvent::AffinityOverride { tid, affinity: m } => {
                // An override may precede the Spawn it rescued (spawn
                // placement widens before tracing); Spawn then records
                // the same post-widening mask, so overwriting is safe
                // in either order.
                affinity.insert(tid, m);
            }
            TraceEvent::SpeedChange { core, speed } => {
                speeds[core.0] = speed;
            }
            TraceEvent::CoreOffline { core } => {
                online[core.0] = false;
            }
            TraceEvent::CoreOnline { core } => {
                online[core.0] = true;
            }
            // The kill is followed by a Done record that clears any
            // running slot; here we only unpark a killed runnable.
            TraceEvent::ThreadKilled { tid } => {
                for c in &mut cores {
                    remove(&mut c.queue, tid);
                }
            }
            _ => {}
        }
    }
    violations
}

// ----------------------------------------------------------------------
// 5. Core liveness: offline cores never receive or hold work
// ----------------------------------------------------------------------

/// Replays hotplug state and asserts no thread is ever dispatched to,
/// spawned on, woken onto, or stolen onto a core that is currently
/// offline, and that taking a core offline leaves nothing behind on it.
/// Applies to every policy: graceful degradation is a kernel contract,
/// not a scheduling choice.
fn check_core_liveness(trace: &KernelTrace) -> Vec<Violation> {
    let n = trace.machine.num_cores();
    let mut online = vec![true; n];
    // What the replay believes sits on each core (running + queued).
    let mut occupants: Vec<Vec<ThreadId>> = vec![Vec::new(); n];
    let mut reported_parked: HashSet<(usize, ThreadId)> = HashSet::new();
    let mut cur_time = SimTime::ZERO;
    let mut violations = Vec::new();

    fn remove(v: &mut Vec<ThreadId>, tid: ThreadId) {
        if let Some(pos) = v.iter().position(|&t| t == tid) {
            v.remove(pos);
        }
    }

    let land = |occupants: &mut Vec<Vec<ThreadId>>,
                online: &[bool],
                tid: ThreadId,
                core: CoreId,
                what: &str,
                time: SimTime,
                violations: &mut Vec<Violation>| {
        if !online[core.0] {
            violations.push(Violation {
                object: String::new(),
                site: String::new(),
                kind: ViolationKind::OfflineDispatch,
                time: Some(time),
                message: format!("{tid} {what} offline core{}", core.0),
            });
        }
        occupants[core.0].push(tid);
    };

    for r in trace.records() {
        if r.time > cur_time {
            // The kernel drains a core in the same instant it traces the
            // offline; anything still parked there once time advances
            // was stranded.
            for (c, occ) in occupants.iter().enumerate() {
                if online[c] {
                    continue;
                }
                for &tid in occ {
                    if reported_parked.insert((c, tid)) {
                        violations.push(Violation {
                            object: String::new(),
                            site: String::new(),
                            kind: ViolationKind::OfflineDispatch,
                            time: Some(cur_time),
                            message: format!("{tid} left parked on offline core{c}"),
                        });
                    }
                }
            }
            cur_time = r.time;
        }
        match r.event {
            TraceEvent::CoreOffline { core } => {
                online[core.0] = false;
            }
            TraceEvent::CoreOnline { core } => {
                online[core.0] = true;
            }
            TraceEvent::Spawn { tid, core, .. } => {
                land(
                    &mut occupants,
                    &online,
                    tid,
                    core,
                    "spawned on",
                    r.time,
                    &mut violations,
                );
            }
            TraceEvent::Wakeup { tid, core, .. } => {
                land(
                    &mut occupants,
                    &online,
                    tid,
                    core,
                    "woken onto",
                    r.time,
                    &mut violations,
                );
            }
            TraceEvent::Steal { tid, from, to } => {
                remove(&mut occupants[from.0], tid);
                land(
                    &mut occupants,
                    &online,
                    tid,
                    to,
                    "stolen onto",
                    r.time,
                    &mut violations,
                );
            }
            TraceEvent::Dispatch { tid, core } if !online[core.0] => {
                violations.push(Violation {
                    object: String::new(),
                    site: String::new(),
                    kind: ViolationKind::OfflineDispatch,
                    time: Some(r.time),
                    message: format!("{tid} dispatched on offline core{}", core.0),
                });
            }
            TraceEvent::Block { tid, .. }
            | TraceEvent::Sleep { tid }
            | TraceEvent::Done { tid }
            | TraceEvent::ThreadKilled { tid } => {
                for c in &mut occupants {
                    remove(c, tid);
                }
            }
            _ => {}
        }
    }
    violations
}

// ----------------------------------------------------------------------
// 6. Forward progress: the watchdog never has to give up
// ----------------------------------------------------------------------

/// A trace whose run the kernel's livelock watchdog abandoned
/// ([`RunOutcome::Stalled`]) is itself a violation: simulated time kept
/// advancing but no work was retired for a full watchdog window. Runs
/// that merely hit a `run_until` limit or sim-time budget are not
/// flagged.
fn check_forward_progress(trace: &KernelTrace) -> Vec<Violation> {
    if trace.outcome != Some(RunOutcome::Stalled) {
        return Vec::new();
    }
    vec![Violation {
        object: String::new(),
        site: String::new(),
        kind: ViolationKind::StalledRun,
        time: trace.records().last().map(|r| r.time),
        message: "the watchdog declared the run livelocked: time advanced but no \
                  work was retired for a full window"
            .to_string(),
    }]
}

// ----------------------------------------------------------------------
// 7. Kill accounting: every kill retires its victim
// ----------------------------------------------------------------------

/// The kernel's kill path is a two-record contract: `ThreadKilled { tid }`
/// immediately followed by `Done { tid }`, which is what drives
/// `threads_killed` and the workloads' `lost_workers` accounting. A
/// `ThreadKilled` with no subsequent `Done` for the same thread means
/// the kill was swallowed — the victim vanished without being retired
/// and every downstream count is off by one.
fn check_kill_accounting(trace: &KernelTrace) -> Vec<Violation> {
    let mut violations = Vec::new();
    let records = trace.records_vec();
    for (i, r) in records.iter().enumerate() {
        let TraceEvent::ThreadKilled { tid } = r.event else {
            continue;
        };
        let retired = records[i + 1..]
            .iter()
            .any(|later| matches!(later.event, TraceEvent::Done { tid: t } if t == tid));
        if !retired {
            violations.push(Violation {
                object: String::new(),
                site: String::new(),
                kind: ViolationKind::DroppedKill,
                time: Some(r.time),
                message: format!(
                    "{tid} was killed but never retired: no Done record follows the \
                     kill, so the victim was silently dropped from accounting"
                ),
            });
        }
    }
    violations
}

// ----------------------------------------------------------------------
// 8. Determinism
// ----------------------------------------------------------------------

/// Compares the kernel traces of two runs of the same seeded program;
/// any difference in kernel count or per-kernel stable hash is a
/// [`ViolationKind::NonDeterminism`] violation.
pub fn compare_runs(label: &str, first: &[KernelTrace], second: &[KernelTrace]) -> Vec<Violation> {
    let mut violations = Vec::new();
    if first.len() != second.len() {
        violations.push(Violation {
            object: String::new(),
            site: String::new(),
            kind: ViolationKind::NonDeterminism,
            time: None,
            message: format!(
                "{label}: replay created {} kernels, original created {}",
                second.len(),
                first.len()
            ),
        });
        return violations;
    }
    for (i, (a, b)) in first.iter().zip(second).enumerate() {
        if a.stable_hash() != b.stable_hash() {
            violations.push(Violation {
                object: String::new(),
                site: String::new(),
                kind: ViolationKind::NonDeterminism,
                time: None,
                message: format!(
                    "{label}: kernel #{i} trace hash {:#018x} != replay hash {:#018x} \
                     ({} vs {} events)",
                    a.stable_hash(),
                    b.stable_hash(),
                    a.num_records(),
                    b.num_records()
                ),
            });
        }
    }
    violations
}

/// Runs `f` twice under trace capture and checks the two runs produced
/// identical traces. Returns the first run's traces plus any
/// determinism violations.
pub fn check_determinism<R>(
    label: &str,
    mut f: impl FnMut() -> R,
) -> (Vec<KernelTrace>, Vec<Violation>) {
    let (_, first) = capture_traces(&mut f);
    let (_, second) = capture_traces(&mut f);
    let violations = compare_runs(label, &first, &second);
    (first, violations)
}

// ----------------------------------------------------------------------
// Workload harness
// ----------------------------------------------------------------------

/// The complete checker report for one workload run.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// `workload @ config / policy / seed`, for display.
    pub label: String,
    /// Number of kernels the run created.
    pub kernels: usize,
    /// Total trace events analyzed (first run).
    pub events: usize,
    /// Every violation from all eight analyses.
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// `true` when no analysis found anything.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs `workload` once under `setup` (twice, for the determinism
/// check) and applies all eight analyses to the captured traces.
pub fn check_workload(workload: &dyn Workload, setup: &RunSetup) -> CheckReport {
    let label = format!(
        "{} @ {} / {} / seed {}",
        workload.name(),
        setup.config,
        setup.policy,
        setup.seed
    );
    let (traces, mut violations) = check_determinism(&label, || workload.run(setup));
    for trace in &traces {
        violations.extend(analyze_trace(trace));
    }
    CheckReport {
        label,
        kernels: traces.len(),
        events: traces
            .iter()
            .map(asym_kernel::KernelTrace::num_records)
            .sum(),
        violations,
    }
}

/// Formats a violation list: a per-kind summary line followed by one
/// bullet per violation, or `"clean"`.
pub fn render_violations(violations: &[Violation]) -> String {
    if violations.is_empty() {
        return "clean".to_string();
    }
    let mut kinds: BTreeMap<String, usize> = BTreeMap::new();
    for v in violations {
        *kinds.entry(v.kind.to_string()).or_insert(0) += 1;
    }
    let summary: Vec<String> = kinds.iter().map(|(k, n)| format!("{n} {k}")).collect();
    let mut out = summary.join(", ");
    for v in violations {
        out.push_str("\n    - ");
        out.push_str(&v.to_string());
    }
    out
}

// ----------------------------------------------------------------------
// Sweep integration
// ----------------------------------------------------------------------

/// A shared, thread-safe violation counter that plugs the trace
/// checkers into a sweep as a per-run observer.
///
/// [`ViolationLog::observer`] returns a closure suitable for
/// `ExperimentOptions::observe_traces` /
/// `ResilientOptions::observe_traces`: every captured kernel trace is
/// run through [`analyze_trace`], findings are printed to stderr with
/// the offending setup, and the total count accumulates in the log.
/// Clones share the same counter, so one log can watch every section
/// of a multi-spec sweep — including cells executing on parallel host
/// threads.
#[derive(Clone, Debug, Default)]
pub struct ViolationLog {
    count: Arc<AtomicUsize>,
}

impl ViolationLog {
    /// An empty log.
    pub fn new() -> Self {
        ViolationLog::default()
    }

    /// Total violations recorded so far, across all clones.
    pub fn count(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// A per-run observer that analyzes every captured trace and
    /// records what the checkers find.
    pub fn observer(
        &self,
    ) -> impl Fn(&RunSetup, &RunResult, &[KernelTrace]) + Send + Sync + 'static {
        let count = self.count.clone();
        move |setup, _result, traces| {
            for trace in traces {
                let found = analyze_trace(trace);
                if !found.is_empty() {
                    count.fetch_add(found.len(), Ordering::Relaxed);
                    eprintln!(
                        "  [VIOLATION] seed {} @ {}: {}",
                        setup.seed,
                        setup.config,
                        render_violations(&found)
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_kernel::{FnThread, Kernel, SchedPolicy, SpawnOptions, Step, TraceRecord};
    use asym_sim::{Cycles, MachineSpec, Speed};

    fn capture_one(f: impl FnOnce()) -> KernelTrace {
        let ((), mut traces) = capture_traces(f);
        assert_eq!(traces.len(), 1, "expected exactly one kernel");
        traces.remove(0)
    }

    #[test]
    fn clean_compute_run_has_no_violations() {
        let trace = capture_one(|| {
            let machine = MachineSpec::asymmetric(1, 3, Speed::fraction_of_full(8));
            let mut k = Kernel::new(machine, SchedPolicy::asymmetry_aware(), 11);
            for t in 0..6 {
                let mut left = 8u32;
                k.spawn(
                    FnThread::new(format!("w{t}"), move |_cx| {
                        if left == 0 {
                            Step::Done
                        } else {
                            left -= 1;
                            Step::Compute(Cycles::from_millis_at_full_speed(0.5))
                        }
                    }),
                    SpawnOptions::new(),
                );
            }
            assert_eq!(k.run(), RunOutcome::AllDone);
        });
        let violations = analyze_trace(&trace);
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn deadlock_fixture_trips_deadlock_detector() {
        let trace = fixtures::ab_ba_deadlock();
        assert!(matches!(trace.outcome, Some(RunOutcome::Deadlock(2))));
        let violations = analyze_trace(&trace);
        assert!(
            violations.iter().any(|v| v.kind == ViolationKind::Deadlock),
            "no deadlock reported: {violations:?}"
        );
        // The same trace also exhibits the order inversion.
        assert!(violations
            .iter()
            .any(|v| v.kind == ViolationKind::LockOrderInversion));
    }

    #[test]
    fn staggered_inversion_trips_lockdep_only() {
        let trace = fixtures::lock_order_inversion();
        assert_eq!(trace.outcome, Some(RunOutcome::AllDone));
        let violations = analyze_trace(&trace);
        assert!(violations
            .iter()
            .any(|v| v.kind == ViolationKind::LockOrderInversion));
        assert!(
            !violations.iter().any(|v| v.kind == ViolationKind::Deadlock),
            "the staggered fixture completes; only the latent inversion should fire"
        );
    }

    #[test]
    fn missed_signal_fixture_trips_lost_wakeup() {
        let trace = fixtures::missed_signal();
        assert!(matches!(trace.outcome, Some(RunOutcome::Deadlock(1))));
        let violations = analyze_trace(&trace);
        assert!(
            violations
                .iter()
                .any(|v| v.kind == ViolationKind::LostWakeup),
            "no lost wakeup reported: {violations:?}"
        );
    }

    #[test]
    fn hand_built_fast_idle_trace_trips_invariant() {
        // Synthetic trace: a thread sits queued on slow core1 while fast
        // core0 idles across a time advance. Built by rewriting a real
        // captured trace so machine/policy metadata stay authentic.
        let ((), traces) = capture_traces(|| {
            let machine = MachineSpec::asymmetric(1, 1, Speed::fraction_of_full(8));
            let mut k = Kernel::new(machine, SchedPolicy::asymmetry_aware(), 5);
            let mut burst = 1u32;
            k.spawn(
                FnThread::new("w", move |_cx| {
                    if burst == 0 {
                        Step::Done
                    } else {
                        burst -= 1;
                        Step::Compute(Cycles::new(1_000))
                    }
                }),
                SpawnOptions::new(),
            );
            k.run();
        });
        let mut trace = traces.into_iter().next().expect("one kernel");
        let first = trace.records().next().expect("trace has records");
        let tid = match first.event {
            TraceEvent::Spawn { tid, .. } => tid,
            other => panic!("first event should be Spawn, was {other:?}"),
        };
        // Rewrite history: the thread is parked on the slow core and
        // nobody dispatches it while the fast core idles.
        trace.set_records(vec![
            TraceRecord {
                time: SimTime::ZERO,
                event: TraceEvent::Spawn {
                    tid,
                    core: CoreId(1),
                    affinity: CoreMask::ALL,
                    parent: None,
                },
            },
            TraceRecord {
                time: SimTime::from_nanos(2_000_000),
                event: TraceEvent::Dispatch {
                    tid,
                    core: CoreId(1),
                },
            },
        ]);
        let violations = analyze_trace(&trace);
        assert!(
            violations
                .iter()
                .any(|v| v.kind == ViolationKind::FastCoreIdle),
            "no fast-core-idle reported: {violations:?}"
        );
    }

    #[test]
    fn stalled_fixture_trips_forward_progress() {
        let trace = fixtures::stalled_run();
        let violations = analyze_trace(&trace);
        assert!(
            violations
                .iter()
                .any(|v| v.kind == ViolationKind::StalledRun),
            "no stalled-run reported: {violations:?}"
        );
    }

    #[test]
    fn time_limited_runs_are_not_stalled() {
        let trace = capture_one(|| {
            let machine = MachineSpec::symmetric(1, Speed::FULL);
            let mut k = Kernel::new(machine, SchedPolicy::os_default(), 6);
            k.spawn(
                FnThread::new("napper", |_cx| {
                    Step::Sleep(asym_sim::SimDuration::from_micros(100))
                }),
                SpawnOptions::new(),
            );
            // No watchdog: the caller-chosen window just elapses.
            k.run_until(SimTime::ZERO + asym_sim::SimDuration::from_millis(2));
        });
        assert_eq!(trace.outcome, Some(RunOutcome::TimeLimit));
        let violations = analyze_trace(&trace);
        assert!(
            !violations
                .iter()
                .any(|v| v.kind == ViolationKind::StalledRun),
            "time-limit misreported as stall: {violations:?}"
        );
    }

    #[test]
    fn swallowed_kill_fixture_trips_kill_accounting() {
        let trace = fixtures::swallowed_kill();
        let violations = analyze_trace(&trace);
        assert!(
            violations
                .iter()
                .any(|v| v.kind == ViolationKind::DroppedKill),
            "no dropped-kill reported: {violations:?}"
        );
    }

    #[test]
    fn real_kills_are_retired_and_kill_accounting_stays_quiet() {
        use asym_sim::{FaultKind, FaultPlan, SimDuration};
        // A genuine fault-injected kill: the kernel retires the victim
        // with a Done record, so the checker must find nothing.
        let trace = capture_one(|| {
            let machine = MachineSpec::symmetric(2, Speed::FULL);
            let mut k = Kernel::new(machine, SchedPolicy::os_default(), 21);
            let mut plan = FaultPlan::new();
            plan.inject(
                SimTime::ZERO + SimDuration::from_millis(1),
                FaultKind::KillThread { victim: 0 },
            );
            k.set_fault_plan(&plan);
            for t in 0..3 {
                let mut left = 6u32;
                k.spawn(
                    FnThread::new(format!("w{t}"), move |_cx| {
                        if left == 0 {
                            Step::Done
                        } else {
                            left -= 1;
                            Step::Compute(Cycles::from_millis_at_full_speed(0.5))
                        }
                    }),
                    SpawnOptions::new(),
                );
            }
            assert_eq!(k.run(), RunOutcome::AllDone);
            assert_eq!(k.stats().threads_killed, 1);
        });
        assert!(trace
            .records()
            .any(|r| matches!(r.event, TraceEvent::ThreadKilled { .. })));
        let violations = analyze_trace(&trace);
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn offline_dispatch_fixture_trips_core_liveness() {
        let trace = fixtures::offline_core_dispatch();
        let violations = analyze_trace(&trace);
        assert!(
            violations
                .iter()
                .any(|v| v.kind == ViolationKind::OfflineDispatch),
            "no offline-dispatch reported: {violations:?}"
        );
    }

    #[test]
    fn faulted_run_with_graceful_degradation_stays_clean() {
        use asym_sim::{FaultKind, FaultPlan, SimDuration};
        // Hotplug the slow core away mid-run and throttle the fast one:
        // the kernel must degrade gracefully and the checkers — including
        // the dynamic asymmetry invariant and core liveness — must find
        // nothing to complain about.
        let trace = capture_one(|| {
            let machine = MachineSpec::asymmetric(1, 3, Speed::fraction_of_full(2));
            let mut k = Kernel::new(machine, SchedPolicy::asymmetry_aware(), 12);
            let at = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
            let mut plan = FaultPlan::new();
            plan.inject(at(2), FaultKind::CoreOffline { core: CoreId(1) });
            plan.inject(
                at(3),
                FaultKind::SetSpeed {
                    core: CoreId(0),
                    speed: Speed::fraction_of_full(4),
                },
            );
            plan.inject(at(5), FaultKind::CoreOnline { core: CoreId(1) });
            k.set_fault_plan(&plan);
            for t in 0..6 {
                let mut left = 10u32;
                k.spawn(
                    FnThread::new(format!("w{t}"), move |_cx| {
                        if left == 0 {
                            Step::Done
                        } else {
                            left -= 1;
                            Step::Compute(Cycles::from_millis_at_full_speed(0.5))
                        }
                    }),
                    SpawnOptions::new(),
                );
            }
            assert_eq!(k.run(), RunOutcome::AllDone);
        });
        assert!(trace
            .records()
            .any(|r| matches!(r.event, TraceEvent::CoreOffline { .. })));
        let violations = analyze_trace(&trace);
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn determinism_check_passes_for_seeded_program() {
        let (traces, violations) = check_determinism("seeded", || {
            let machine = MachineSpec::asymmetric(2, 2, Speed::fraction_of_full(4));
            let mut k = Kernel::new(machine, SchedPolicy::os_default(), 99);
            for t in 0..4 {
                let mut left = 5u32;
                k.spawn(
                    FnThread::new(format!("w{t}"), move |cx| {
                        if left == 0 {
                            Step::Done
                        } else {
                            left -= 1;
                            let jitter = cx.rng().range(1_000, 50_000);
                            Step::Compute(Cycles::new(jitter))
                        }
                    }),
                    SpawnOptions::new(),
                );
            }
            k.run();
        });
        assert_eq!(traces.len(), 1);
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn determinism_check_catches_divergence() {
        use std::cell::Cell;
        let call = Cell::new(0u64);
        let (_, violations) = check_determinism("diverging", || {
            call.set(call.get() + 1);
            let machine = MachineSpec::symmetric(2, Speed::FULL);
            // Different seed per call: the traces must differ.
            let mut k = Kernel::new(machine, SchedPolicy::os_default(), call.get());
            let mut left = 3u32;
            k.spawn(
                FnThread::new("w", move |cx| {
                    if left == 0 {
                        Step::Done
                    } else {
                        left -= 1;
                        Step::Compute(Cycles::new(cx.rng().range(1_000, 9_000)))
                    }
                }),
                SpawnOptions::new(),
            );
            k.run();
        });
        assert!(violations
            .iter()
            .any(|v| v.kind == ViolationKind::NonDeterminism));
    }
}
