//! The happens-before engine: vector clocks, race detection, lock-set
//! checking, and scheduler-policy lints over a captured [`KernelTrace`].
//!
//! # The happens-before relation
//!
//! The engine replays the state-complete event stream once, maintaining a
//! vector clock per simulated thread, and derives ordering edges from the
//! synchronization events the kernel and `asym-sync` primitives emit:
//!
//! | Trace events | Edge |
//! |---|---|
//! | every event of one thread | program order (implicit in the clocks) |
//! | `Spawn { parent }` → child's first event | spawn edge |
//! | `Done` → `ThreadJoin { by, of }` | exit→join edge |
//! | `LockRelease` → next `LockAcquire` of the lock | release–acquire |
//! | `Signal { waker }` → the `Wakeup`s it causes | signal→wakeup |
//! | `BarrierArrive` → the releasing arrival | barrier epoch |
//! | `SemRelease` → later `SemAcquire` | permit hand-off |
//! | `QueuePush` → later `QueuePop` | message hand-off |
//! | `SharedAtomic` store/rmw → later load/rmw of the word | acquire/release |
//!
//! Accumulating object clocks (locks, semaphores, queues, atomics join
//! every publisher) over-approximate the per-item relation, which biases
//! the race detector toward *fewer* reports — the right direction for a
//! checker whose clean verdict gates CI.
//!
//! # Race detection
//!
//! Plain [`SharedRead`](TraceEvent::SharedRead) /
//! [`SharedWrite`](TraceEvent::SharedWrite) accesses (from `asym-sync`'s
//! `SimShared`) are checked FastTrack-style: each (object, word) keeps the
//! last read and write epoch per thread, and an access racing any
//! conflicting epoch not covered by the accessor's clock is reported as
//! [`ViolationKind::DataRace`] with both trace sites.
//!
//! # Lock-set checking
//!
//! An Eraser-style pass over the same accesses: once two distinct threads
//! access an object while holding locks, the object is treated as
//! lock-disciplined and the intersection of lock sets over *all* its
//! accesses must stay non-empty, else
//! [`ViolationKind::InconsistentLockSet`].
//!
//! # Policy lints
//!
//! [`check_stale_ranking`] replays scheduler state and asserts that under
//! the asymmetry-aware policy every placement (spawn or wakeup) lands on
//! the fastest idle eligible core *by the speed ranking in force at that
//! instant* — a dispatch using a ranking stale since a `SpeedChange`
//! re-rank is reported as [`ViolationKind::StaleRanking`] citing both the
//! re-rank site and the offending placement.
//!
//! [`check_rerank_hygiene`] lints the dynamic-asymmetry trace contract
//! itself: a `SpeedChange` that reorders the online-core speed ranking
//! must be confirmed by a `Rerank` record within
//! [`RERANK_STALENESS_BOUND`] ([`ViolationKind::StaleRerank`]), and more
//! than [`RERANK_THRASH_LIMIT`] re-ranks inside one
//! [`RERANK_THRASH_WINDOW`] is churn the environment hysteresis should
//! have damped ([`ViolationKind::RerankThrash`]).

use crate::{KernelTrace, Violation, ViolationKind};
use asym_kernel::{AtomicOp, PolicyKind, ShareId, ThreadId, TraceEvent, WaitId, WakeReason};
use asym_sim::{CoreId, CoreMask, SimDuration, SimTime};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

// ----------------------------------------------------------------------
// Vector clocks
// ----------------------------------------------------------------------

/// A vector clock over thread indices (grown on demand).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct VClock(Vec<u32>);

impl VClock {
    fn get(&self, t: usize) -> u32 {
        self.0.get(t).copied().unwrap_or(0)
    }

    fn tick(&mut self, t: usize) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &c) in other.0.iter().enumerate() {
            if self.0[i] < c {
                self.0[i] = c;
            }
        }
    }

    /// Does this clock cover thread `t` up to `clock`?
    fn covers(&self, t: usize, clock: u32) -> bool {
        self.get(t) >= clock
    }
}

// ----------------------------------------------------------------------
// The happens-before graph
// ----------------------------------------------------------------------

/// Why two trace records are ordered (the label on an [`HbEdge`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// `Spawn` → the child's first event.
    Spawn,
    /// A dead thread's `Done` → the `ThreadJoin` observing it.
    Join,
    /// `LockRelease` → `LockAcquire` of the same lock.
    Lock,
    /// `Signal` → the `Wakeup` it caused.
    Signal,
    /// A barrier arrival → the arrival that released the epoch.
    Barrier,
    /// `SemRelease` → `SemAcquire` of the same semaphore.
    Sem,
    /// `QueuePush` → `QueuePop` of the same queue.
    Queue,
    /// Atomic store/rmw → later load/rmw of the same (object, word).
    Atomic,
}

/// One cross-thread ordering edge between two records of a trace.
///
/// Both endpoints are indices into `trace.records`; by construction
/// `src < dst`, which (with the trace's non-decreasing timestamps) makes
/// the full relation acyclic and time-consistent — the property the HB
/// engine's regression tests pin down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HbEdge {
    /// The earlier record (the release/publish side).
    pub src: usize,
    /// The later record (the acquire/observe side).
    pub dst: usize,
    /// The synchronization that justifies the edge.
    pub kind: EdgeKind,
}

/// The result of one happens-before replay: the cross-thread edge list
/// and every data race the vector-clock pass found.
#[derive(Debug, Clone, Default)]
pub struct HbAnalysis {
    /// Every cross-thread ordering edge, in discovery order.
    pub edges: Vec<HbEdge>,
    /// Data-race violations (plain accesses unordered by the relation).
    pub races: Vec<Violation>,
}

/// Names a shared object for diagnostics: `obj3 ('apache.inbox')` when
/// the registration label survives on the trace, bare `obj3` otherwise.
/// Decodes the record at `idx` (diagnostics only — O(idx), used when a
/// violation needs to cite an earlier trace site by index).
fn record_at(trace: &KernelTrace, idx: usize) -> asym_kernel::TraceRecord {
    trace
        .records()
        .nth(idx)
        .expect("violation cites a record index inside the trace")
}

fn obj_name(trace: &KernelTrace, obj: ShareId) -> String {
    match trace.shared_label(obj) {
        Some(label) => format!("{obj} ('{label}')"),
        None => format!("{obj}"),
    }
}

/// Per-(object, word) race-detector state: last plain access epoch per
/// thread, split by access kind.
#[derive(Debug, Default)]
struct WordState {
    /// thread index → (clock at write, record index).
    writes: HashMap<usize, (u32, usize)>,
    /// thread index → (clock at read, record index).
    reads: HashMap<usize, (u32, usize)>,
}

/// Replays `trace` once, building the full happens-before relation and
/// running the vector-clock race detector over plain shared accesses.
pub fn happens_before(trace: &KernelTrace) -> HbAnalysis {
    let mut vc: Vec<VClock> = Vec::new();
    let mut edges: Vec<HbEdge> = Vec::new();
    let mut races: Vec<Violation> = Vec::new();

    // Object clocks, each paired with the record index of the latest
    // publisher (the edge source used when someone acquires from it).
    let mut lock_vc: HashMap<WaitId, (VClock, usize)> = HashMap::new();
    let mut sem_vc: HashMap<WaitId, (VClock, usize)> = HashMap::new();
    let mut queue_vc: HashMap<WaitId, (VClock, usize)> = HashMap::new();
    let mut atomic_vc: HashMap<(ShareId, u32), (VClock, usize)> = HashMap::new();
    // Barrier epoch accumulators: joined clock + pending arrival sites.
    let mut barrier_acc: HashMap<WaitId, (VClock, Vec<usize>)> = HashMap::new();
    // Latest Signal per wait queue: (record index, waker clock if the
    // signal came from a simulated thread).
    let mut last_signal: HashMap<WaitId, (usize, Option<VClock>)> = HashMap::new();
    // Which wait queue each blocked thread is parked on.
    let mut blocked_on: HashMap<ThreadId, WaitId> = HashMap::new();
    // Where each finished thread's Done record sits (join-edge source).
    let mut done_at: HashMap<ThreadId, usize> = HashMap::new();
    // Spawn records whose child has not produced an event yet.
    let mut pending_spawn: HashMap<ThreadId, usize> = HashMap::new();
    // Race-detector state and once-per-word reporting.
    let mut words: HashMap<(ShareId, u32), WordState> = HashMap::new();
    let mut reported: HashSet<(ShareId, u32)> = HashSet::new();

    fn clock_of(vc: &mut Vec<VClock>, t: usize) -> &mut VClock {
        if vc.len() <= t {
            vc.resize(t + 1, VClock::default());
        }
        &mut vc[t]
    }

    for (i, r) in trace.records().enumerate() {
        // The thread this record belongs to (its author for publishes,
        // its subject for scheduler events); used for program-order
        // clock ticks and spawn-edge completion.
        let subject: Option<ThreadId> = match r.event {
            TraceEvent::Spawn { parent, .. } => parent,
            TraceEvent::Signal { waker, .. } => waker,
            TraceEvent::Dispatch { tid, .. }
            | TraceEvent::Migrate { tid, .. }
            | TraceEvent::Preempt { tid, .. }
            | TraceEvent::Steal { tid, .. }
            | TraceEvent::Wakeup { tid, .. }
            | TraceEvent::Block { tid, .. }
            | TraceEvent::Sleep { tid }
            | TraceEvent::Done { tid }
            | TraceEvent::LockAcquire { tid, .. }
            | TraceEvent::LockRelease { tid, .. }
            | TraceEvent::CondWait { tid, .. }
            | TraceEvent::BarrierArrive { tid, .. }
            | TraceEvent::SemAcquire { tid, .. }
            | TraceEvent::SemRelease { tid, .. }
            | TraceEvent::QueuePush { tid, .. }
            | TraceEvent::QueuePop { tid, .. }
            | TraceEvent::ThreadKilled { tid }
            | TraceEvent::SharedRead { tid, .. }
            | TraceEvent::SharedWrite { tid, .. }
            | TraceEvent::SharedAtomic { tid, .. } => Some(tid),
            TraceEvent::ThreadJoin { by, .. } => Some(by),
            TraceEvent::SetAffinity { .. }
            | TraceEvent::AffinityOverride { .. }
            | TraceEvent::SpeedChange { .. }
            | TraceEvent::Rerank { .. }
            | TraceEvent::CoreOffline { .. }
            | TraceEvent::CoreOnline { .. } => None,
        };

        // Complete a pending spawn edge at the child's first event.
        if let Some(t) = subject {
            if let Some(src) = pending_spawn.remove(&t) {
                if src < i {
                    edges.push(HbEdge {
                        src,
                        dst: i,
                        kind: EdgeKind::Spawn,
                    });
                }
            }
        }

        match r.event {
            TraceEvent::Spawn { tid, parent, .. } => {
                // The child inherits the parent's history.
                if let Some(p) = parent {
                    let parent_clock = clock_of(&mut vc, p.index()).clone();
                    clock_of(&mut vc, tid.index()).join(&parent_clock);
                }
                pending_spawn.insert(tid, i);
            }
            TraceEvent::Block { tid, wait } => {
                blocked_on.insert(tid, wait);
            }
            TraceEvent::Wakeup { tid, reason, .. } => {
                if reason == WakeReason::Signal {
                    if let Some(wait) = blocked_on.remove(&tid) {
                        if let Some((sig_idx, Some(waker_clock))) = last_signal.get(&wait) {
                            let waker_clock = waker_clock.clone();
                            clock_of(&mut vc, tid.index()).join(&waker_clock);
                            edges.push(HbEdge {
                                src: *sig_idx,
                                dst: i,
                                kind: EdgeKind::Signal,
                            });
                        }
                    }
                } else {
                    blocked_on.remove(&tid);
                }
            }
            TraceEvent::Signal { waker, wait, .. } => {
                let snapshot = waker.map(|w| clock_of(&mut vc, w.index()).clone());
                last_signal.insert(wait, (i, snapshot));
            }
            TraceEvent::Done { tid } => {
                done_at.insert(tid, i);
                blocked_on.remove(&tid);
            }
            TraceEvent::ThreadJoin { by, of } => {
                let dead_clock = clock_of(&mut vc, of.index()).clone();
                clock_of(&mut vc, by.index()).join(&dead_clock);
                if let Some(&src) = done_at.get(&of) {
                    edges.push(HbEdge {
                        src,
                        dst: i,
                        kind: EdgeKind::Join,
                    });
                }
            }
            TraceEvent::LockAcquire { tid, lock, .. } => {
                if let Some((v, src)) = lock_vc.get(&lock) {
                    let v = v.clone();
                    let src = *src;
                    clock_of(&mut vc, tid.index()).join(&v);
                    edges.push(HbEdge {
                        src,
                        dst: i,
                        kind: EdgeKind::Lock,
                    });
                }
            }
            TraceEvent::LockRelease { tid, lock } => {
                let own = clock_of(&mut vc, tid.index()).clone();
                let entry = lock_vc.entry(lock).or_default();
                entry.0.join(&own);
                entry.1 = i;
            }
            TraceEvent::BarrierArrive {
                tid,
                barrier,
                released,
            } => {
                let own = clock_of(&mut vc, tid.index()).clone();
                let entry = barrier_acc.entry(barrier).or_default();
                if released {
                    // The releasing arrival acquires every earlier
                    // arrival of the epoch; waiters then inherit it
                    // through the releaser's Signal→Wakeup edges.
                    let (acc, pend) = std::mem::take(entry);
                    clock_of(&mut vc, tid.index()).join(&acc);
                    for src in pend {
                        edges.push(HbEdge {
                            src,
                            dst: i,
                            kind: EdgeKind::Barrier,
                        });
                    }
                } else {
                    entry.0.join(&own);
                    entry.1.push(i);
                }
            }
            TraceEvent::SemRelease { tid, sem } => {
                let own = clock_of(&mut vc, tid.index()).clone();
                let entry = sem_vc.entry(sem).or_default();
                entry.0.join(&own);
                entry.1 = i;
            }
            TraceEvent::SemAcquire { tid, sem } => {
                if let Some((v, src)) = sem_vc.get(&sem) {
                    let v = v.clone();
                    let src = *src;
                    clock_of(&mut vc, tid.index()).join(&v);
                    edges.push(HbEdge {
                        src,
                        dst: i,
                        kind: EdgeKind::Sem,
                    });
                }
            }
            TraceEvent::QueuePush { tid, queue } => {
                let own = clock_of(&mut vc, tid.index()).clone();
                let entry = queue_vc.entry(queue).or_default();
                entry.0.join(&own);
                entry.1 = i;
            }
            TraceEvent::QueuePop { tid, queue } => {
                if let Some((v, src)) = queue_vc.get(&queue) {
                    let v = v.clone();
                    let src = *src;
                    clock_of(&mut vc, tid.index()).join(&v);
                    edges.push(HbEdge {
                        src,
                        dst: i,
                        kind: EdgeKind::Queue,
                    });
                }
            }
            TraceEvent::SharedAtomic { tid, obj, word, op } => {
                let key = (obj, word);
                if matches!(op, AtomicOp::Load | AtomicOp::Rmw) {
                    if let Some((v, src)) = atomic_vc.get(&key) {
                        let v = v.clone();
                        let src = *src;
                        clock_of(&mut vc, tid.index()).join(&v);
                        edges.push(HbEdge {
                            src,
                            dst: i,
                            kind: EdgeKind::Atomic,
                        });
                    }
                }
                if matches!(op, AtomicOp::Store | AtomicOp::Rmw) {
                    let own = clock_of(&mut vc, tid.index()).clone();
                    let entry = atomic_vc.entry(key).or_default();
                    entry.0.join(&own);
                    entry.1 = i;
                }
            }
            TraceEvent::SharedRead { tid, obj, word } => {
                let t = tid.index();
                let clock = clock_of(&mut vc, t).get(t);
                let me = clock_of(&mut vc, t).clone();
                let state = words.entry((obj, word)).or_default();
                // A read races only with unordered *writes*.
                let conflict = state
                    .writes
                    .iter()
                    .find(|(&u, &(cu, _))| u != t && !me.covers(u, cu))
                    .map(|(&u, &(_, iu))| (u, iu));
                if let Some((u, iu)) = conflict {
                    if reported.insert((obj, word)) {
                        races.push(race_violation(
                            trace, obj, word, u, iu, "write", t, i, "read", r.time,
                        ));
                    }
                }
                state.reads.insert(t, (clock, i));
            }
            TraceEvent::SharedWrite { tid, obj, word } => {
                let t = tid.index();
                let clock = clock_of(&mut vc, t).get(t);
                let me = clock_of(&mut vc, t).clone();
                let state = words.entry((obj, word)).or_default();
                // A write races with any unordered access.
                let conflict = state
                    .writes
                    .iter()
                    .map(|(&u, &(cu, iu))| (u, cu, iu, "write"))
                    .chain(
                        state
                            .reads
                            .iter()
                            .map(|(&u, &(cu, iu))| (u, cu, iu, "read")),
                    )
                    .find(|&(u, cu, _, _)| u != t && !me.covers(u, cu));
                if let Some((u, _, iu, what)) = conflict {
                    if reported.insert((obj, word)) {
                        races.push(race_violation(
                            trace, obj, word, u, iu, what, t, i, "write", r.time,
                        ));
                    }
                }
                state.writes.insert(t, (clock, i));
            }
            _ => {}
        }

        // Program order: the subject's clock advances past this event,
        // so anything it published here is distinguishable from its
        // later accesses.
        if let Some(t) = subject {
            clock_of(&mut vc, t.index()).tick(t.index());
        }
    }

    HbAnalysis { edges, races }
}

/// Builds the two-site diagnostic for one data race.
#[allow(clippy::too_many_arguments)]
fn race_violation(
    trace: &KernelTrace,
    obj: ShareId,
    word: u32,
    earlier_thread: usize,
    earlier_idx: usize,
    earlier_kind: &str,
    later_thread: usize,
    later_idx: usize,
    later_kind: &str,
    time: SimTime,
) -> Violation {
    let earlier_time = record_at(trace, earlier_idx).time;
    let object = obj_name(trace, obj);
    Violation::new(
        ViolationKind::DataRace,
        Some(time),
        format!(
            "word {word} of {object}: {earlier_kind} by tid{earlier_thread} at #{earlier_idx} \
             ({earlier_time}) and {later_kind} by tid{later_thread} at #{later_idx} ({time}) \
             are unordered — no happens-before path connects the accesses"
        ),
    )
    .with_object(object)
    .with_site(format!("#{earlier_idx}->#{later_idx}"))
}

/// Runs the vector-clock data-race detector over `trace` (one report per
/// racy (object, word), citing both access sites).
pub fn check_races(trace: &KernelTrace) -> Vec<Violation> {
    happens_before(trace).races
}

// ----------------------------------------------------------------------
// Lock-set (atomicity) checking
// ----------------------------------------------------------------------

/// Eraser-style lock-set checking over plain `SimShared` accesses.
///
/// An object participates once at least two distinct threads have
/// accessed it while holding at least one lock — the signature of
/// intended lock discipline. For participating objects the intersection
/// of lock sets over **all** accesses must stay non-empty; an empty
/// intersection is reported with two witness sites whose lock sets are
/// disjoint (or whichever access emptied the running intersection).
///
/// Objects synchronized by other means (queues, signals, joins — the
/// message-passing style most workloads use) never enter the check, so
/// it adds no false positives on top of the race detector.
pub fn check_locksets(trace: &KernelTrace) -> Vec<Violation> {
    struct Access {
        tid: ThreadId,
        idx: usize,
        time: SimTime,
        held: BTreeSet<WaitId>,
    }
    let mut held: HashMap<ThreadId, BTreeSet<WaitId>> = HashMap::new();
    let mut accesses: HashMap<ShareId, Vec<Access>> = HashMap::new();

    for (i, r) in trace.records().enumerate() {
        match r.event {
            TraceEvent::LockAcquire { tid, lock, .. } => {
                held.entry(tid).or_default().insert(lock);
            }
            TraceEvent::LockRelease { tid, lock } => {
                if let Some(set) = held.get_mut(&tid) {
                    set.remove(&lock);
                }
            }
            TraceEvent::SharedRead { tid, obj, .. } | TraceEvent::SharedWrite { tid, obj, .. } => {
                accesses.entry(obj).or_default().push(Access {
                    tid,
                    idx: i,
                    time: r.time,
                    held: held.get(&tid).cloned().unwrap_or_default(),
                });
            }
            _ => {}
        }
    }

    let mut violations = Vec::new();
    let mut objs: Vec<_> = accesses.into_iter().collect();
    objs.sort_by_key(|(obj, _)| *obj);
    for (obj, accs) in objs {
        let locked_threads: HashSet<ThreadId> = accs
            .iter()
            .filter(|a| !a.held.is_empty())
            .map(|a| a.tid)
            .collect();
        if locked_threads.len() < 2 {
            continue;
        }
        let mut inter = accs[0].held.clone();
        let mut witness = accs[0].idx;
        let mut culprit = None;
        for a in &accs[1..] {
            let narrowed: BTreeSet<WaitId> = inter.intersection(&a.held).copied().collect();
            if narrowed.is_empty() {
                culprit = Some(a);
                break;
            }
            inter = narrowed;
            witness = a.idx;
        }
        let Some(culprit) = culprit else {
            continue;
        };
        let object = obj_name(trace, obj);
        let w = record_at(trace, witness);
        let held_list = |s: &BTreeSet<WaitId>| {
            if s.is_empty() {
                "no locks".to_string()
            } else {
                s.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("+")
            }
        };
        let witness_held = accs
            .iter()
            .find(|a| a.idx == witness)
            .map(|a| held_list(&a.held))
            .unwrap_or_default();
        violations.push(
            Violation::new(
                ViolationKind::InconsistentLockSet,
                Some(culprit.time),
                format!(
                    "{object} is lock-disciplined (two or more threads access it under locks) \
                     but no common lock protects every access: #{witness} ({}) held \
                     {witness_held} while {} by tid{} at #{} ({}) held {}",
                    w.time,
                    "the access",
                    culprit.tid.index(),
                    culprit.idx,
                    culprit.time,
                    held_list(&culprit.held),
                ),
            )
            .with_object(object)
            .with_site(format!("#{witness}->#{}", culprit.idx)),
        );
    }
    violations
}

// ----------------------------------------------------------------------
// Policy lint: placements must honour the current speed ranking
// ----------------------------------------------------------------------

/// Lints every placement decision (spawn and wakeup) of an
/// asymmetry-aware trace against the speed ranking in force at that
/// instant: when any idle, online, affinity-eligible core exists, the
/// kernel's placement contract is "fastest such core, ties to the lowest
/// index". A placement that lands anywhere else used a stale (or plain
/// wrong) ranking — the §3.1.1 bug class where a fault re-ranks the
/// cores and a dispatch keeps consulting the old table. The report cites
/// both the ranking site (the latest `SpeedChange`, or the initial
/// machine shape) and the offending placement.
pub fn check_stale_ranking(trace: &KernelTrace) -> Vec<Violation> {
    if !trace.policy.is_asymmetry_aware() {
        return Vec::new();
    }
    struct CoreState {
        running: Option<ThreadId>,
        queue: Vec<ThreadId>,
    }
    let mut speeds = trace.machine.speeds().to_vec();
    let mut online = vec![true; speeds.len()];
    let mut cores: Vec<CoreState> = speeds
        .iter()
        .map(|_| CoreState {
            running: None,
            queue: Vec::new(),
        })
        .collect();
    let mut affinity: HashMap<ThreadId, CoreMask> = HashMap::new();
    let mut rank_site: Option<usize> = None;
    let mut violations = Vec::new();

    fn remove(v: &mut Vec<ThreadId>, tid: ThreadId) {
        if let Some(pos) = v.iter().position(|&t| t == tid) {
            v.remove(pos);
        }
    }

    for (i, r) in trace.records().enumerate() {
        // Lint placements before applying their state effect: the
        // eligibility snapshot is the instant *before* the thread lands.
        let placement: Option<(ThreadId, CoreId, CoreMask, &str)> = match r.event {
            TraceEvent::Spawn {
                tid,
                core,
                affinity: mask,
                ..
            } => Some((tid, core, mask, "spawned onto")),
            TraceEvent::Wakeup { tid, core, .. } => affinity
                .get(&tid)
                .map(|&mask| (tid, core, mask, "woken onto")),
            _ => None,
        };
        if let Some((tid, chosen, mask, what)) = placement {
            let eligible: Vec<usize> = (0..cores.len())
                .filter(|&c| {
                    online[c]
                        && mask.contains(CoreId(c))
                        && cores[c].running.is_none()
                        && cores[c].queue.is_empty()
                })
                .collect();
            if let Some(&best) = eligible
                .iter()
                .max_by(|&&a, &&b| speeds[a].cmp(&speeds[b]).then(b.cmp(&a)))
            {
                if chosen.0 != best {
                    let rank_desc = match rank_site {
                        Some(s) => {
                            format!("the ranking in force since SpeedChange at #{s}")
                        }
                        None => "the machine's initial speed ranking".to_string(),
                    };
                    let site = match rank_site {
                        Some(s) => format!("#{s}->#{i}"),
                        None => format!("#{i}"),
                    };
                    violations.push(
                        Violation::new(
                            ViolationKind::StaleRanking,
                            Some(r.time),
                            format!(
                                "{tid} {what} core{} (speed {:.3}) at #{i} while idle eligible \
                                 core{best} (speed {:.3}) was faster under {rank_desc} — the \
                                 placement ignored the current speed ranking",
                                chosen.0,
                                speeds[chosen.0].factor(),
                                speeds[best].factor(),
                            ),
                        )
                        .with_object(format!("core{}", chosen.0))
                        .with_site(site),
                    );
                }
            }
        }
        match r.event {
            TraceEvent::Spawn {
                tid,
                core,
                affinity: mask,
                ..
            } => {
                affinity.insert(tid, mask);
                cores[core.0].queue.push(tid);
            }
            TraceEvent::Dispatch { tid, core } => {
                remove(&mut cores[core.0].queue, tid);
                cores[core.0].running = Some(tid);
            }
            TraceEvent::Preempt { tid, core, .. } => {
                if cores[core.0].running == Some(tid) {
                    cores[core.0].running = None;
                }
                cores[core.0].queue.push(tid);
            }
            TraceEvent::Steal { tid, from, to } => {
                remove(&mut cores[from.0].queue, tid);
                cores[to.0].queue.push(tid);
            }
            TraceEvent::Wakeup { tid, core, .. } => {
                cores[core.0].queue.push(tid);
            }
            TraceEvent::Block { tid, .. }
            | TraceEvent::Sleep { tid }
            | TraceEvent::Done { tid } => {
                for c in &mut cores {
                    if c.running == Some(tid) {
                        c.running = None;
                    }
                }
            }
            TraceEvent::SetAffinity { tid, affinity: m }
            | TraceEvent::AffinityOverride { tid, affinity: m } => {
                affinity.insert(tid, m);
            }
            TraceEvent::SpeedChange { core, speed } => {
                speeds[core.0] = speed;
                rank_site = Some(i);
            }
            TraceEvent::CoreOffline { core } => {
                online[core.0] = false;
            }
            TraceEvent::CoreOnline { core } => {
                online[core.0] = true;
            }
            TraceEvent::ThreadKilled { tid } => {
                for c in &mut cores {
                    remove(&mut c.queue, tid);
                }
            }
            _ => {}
        }
    }
    violations
}

// ----------------------------------------------------------------------
// Policy lint: re-ranking hygiene (staleness bound + thrash)
// ----------------------------------------------------------------------

/// How long a ranking-reordering `SpeedChange` may go unconfirmed by a
/// `Rerank` record for the same core before the ranking counts as stale.
/// The kernel's contract is to announce the re-rank in the same instant
/// it applies the speed, so one millisecond is generous.
pub const RERANK_STALENESS_BOUND: SimDuration = SimDuration::from_millis(1);

/// The sliding window over which [`RERANK_THRASH_LIMIT`] applies.
pub const RERANK_THRASH_WINDOW: SimDuration = SimDuration::from_millis(1);

/// More `Rerank` records than this inside one
/// [`RERANK_THRASH_WINDOW`] is churn: the environment hysteresis
/// (confirmation ticks plus a per-core minimum apply interval) keeps
/// legitimate traces far below it even when every core re-targets in
/// the same tick.
pub const RERANK_THRASH_LIMIT: usize = 8;

/// Lints the re-ranking contract of a trace with dynamic speeds:
///
/// 1. **Staleness** — every `SpeedChange` that reorders the online-core
///    speed ranking must be confirmed by a `Rerank` record for that core
///    within [`RERANK_STALENESS_BOUND`]; a reorder the kernel never
///    announced means downstream consumers (balancers, observers) kept
///    acting on a ranking known to be stale
///    ([`ViolationKind::StaleRerank`]).
/// 2. **Thrash** — more than [`RERANK_THRASH_LIMIT`] `Rerank` records
///    within any [`RERANK_THRASH_WINDOW`] is migration-churn the
///    hysteresis was supposed to damp ([`ViolationKind::RerankThrash`]).
///
/// Applies to every policy: the trace contract is the kernel's, not the
/// scheduler's. Hotplug reorders (a core leaving or joining the ranking)
/// are not speed re-ranks and carry no confirmation obligation.
pub fn check_rerank_hygiene(trace: &KernelTrace) -> Vec<Violation> {
    let mut speeds = trace.machine.speeds().to_vec();
    let mut online = vec![true; speeds.len()];
    let ranking = |speeds: &[asym_sim::Speed], online: &[bool]| -> Vec<usize> {
        let mut order: Vec<usize> = (0..speeds.len()).filter(|&c| online[c]).collect();
        order.sort_by(|&a, &b| speeds[b].cmp(&speeds[a]).then(a.cmp(&b)));
        order
    };
    // Unconfirmed ranking reorders: (record index, core, deadline).
    let mut pending: Vec<(usize, CoreId, SimTime)> = Vec::new();
    // Recent rerank sites for the thrash window: (time, record index).
    let mut recent: VecDeque<(SimTime, usize)> = VecDeque::new();
    let mut thrash_reported = false;
    let mut violations = Vec::new();

    let stale = |idx: usize, core: CoreId, time: SimTime| {
        Violation::new(
            ViolationKind::StaleRerank,
            Some(time),
            format!(
                "SpeedChange at #{idx} reordered the online-core speed ranking but no \
                 Rerank record for core{} followed within {}",
                core.0, RERANK_STALENESS_BOUND
            ),
        )
        .with_object(format!("core{}", core.0))
        .with_site(format!("#{idx}"))
    };

    for (i, r) in trace.records().enumerate() {
        // Expire overdue confirmations before applying this record.
        while let Some(&(idx, core, at)) = pending.first() {
            if r.time.duration_since(at) > RERANK_STALENESS_BOUND {
                violations.push(stale(idx, core, at));
                pending.remove(0);
            } else {
                break;
            }
        }
        match r.event {
            TraceEvent::SpeedChange { core, speed } => {
                let before = ranking(&speeds, &online);
                speeds[core.0] = speed;
                if ranking(&speeds, &online) != before {
                    pending.push((i, core, r.time));
                }
            }
            TraceEvent::Rerank { core } => {
                if let Some(pos) = pending.iter().position(|&(_, c, _)| c == core) {
                    pending.remove(pos);
                }
                while let Some(&(t, _)) = recent.front() {
                    if r.time.duration_since(t) > RERANK_THRASH_WINDOW {
                        recent.pop_front();
                    } else {
                        break;
                    }
                }
                recent.push_back((r.time, i));
                if recent.len() > RERANK_THRASH_LIMIT && !thrash_reported {
                    thrash_reported = true;
                    let (start_t, start_i) = *recent.front().expect("window not empty");
                    violations.push(
                        Violation::new(
                            ViolationKind::RerankThrash,
                            Some(r.time),
                            format!(
                                "{} re-ranks inside one {} window (since #{start_i} at \
                                 {start_t}): hysteresis failed to damp the churn",
                                recent.len(),
                                RERANK_THRASH_WINDOW
                            ),
                        )
                        .with_site(format!("#{start_i}->#{i}")),
                    );
                }
            }
            TraceEvent::CoreOffline { core } => {
                online[core.0] = false;
            }
            TraceEvent::CoreOnline { core } => {
                online[core.0] = true;
            }
            _ => {}
        }
    }
    // A reorder the trace never confirmed is stale no matter when the
    // run ended: the kernel announces re-ranks in the same instant.
    for (idx, core, at) in pending {
        violations.push(stale(idx, core, at));
    }
    violations
}

// ----------------------------------------------------------------------
// Policy lint: fair-share schedulers must not starve a runnable thread
// ----------------------------------------------------------------------

/// How long a runnable thread may sit continuously queued before the
/// fairness lint considers it starved (provided enough other dispatches
/// bypassed it — see [`STARVATION_MIN_BYPASSES`]).
pub const STARVATION_BOUND: SimDuration = SimDuration::from_millis(200);

/// How many times other threads must be dispatched on the waiting
/// thread's core, while it sits queued, before the wait counts as
/// starvation rather than a briefly-overloaded queue.
pub const STARVATION_MIN_BYPASSES: usize = 64;

/// Lints fair-share (vruntime) traces for starvation: a thread that
/// stays continuously queued for more than [`STARVATION_BOUND`] while
/// the scheduler dispatches other threads on its core at least
/// [`STARVATION_MIN_BYPASSES`] times has been starved — under a
/// lowest-progress-first discipline a waiting thread's progress never
/// advances, so it must win the queue long before either limit.
/// Only applies to [`PolicyKind::VruntimeFair`] traces; priority and
/// FIFO policies legitimately order threads by other criteria.
pub fn check_starvation(trace: &KernelTrace) -> Vec<Violation> {
    if trace.policy.kind() != PolicyKind::VruntimeFair {
        return Vec::new();
    }
    struct Waiting {
        core: CoreId,
        since: SimTime,
        since_idx: usize,
        bypasses: usize,
    }
    let mut queued: HashMap<ThreadId, Waiting> = HashMap::new();
    let mut violations = Vec::new();
    let mut flag = |tid: ThreadId, w: &Waiting, end: SimTime, end_idx: Option<usize>| {
        let waited = end.duration_since(w.since);
        if waited > STARVATION_BOUND && w.bypasses >= STARVATION_MIN_BYPASSES {
            let site = match end_idx {
                Some(idx) => format!("#{}->#{idx}", w.since_idx),
                None => format!("#{}->end", w.since_idx),
            };
            violations.push(
                Violation::new(
                    ViolationKind::Starvation,
                    Some(end),
                    format!(
                        "thread {} sat queued on core {} for {waited} (bound \
                         {STARVATION_BOUND}) while {} other dispatches ran there",
                        tid.index(),
                        w.core.0,
                        w.bypasses,
                    ),
                )
                .with_object(format!("thread{}", tid.index()))
                .with_site(site),
            );
        }
    };
    for (i, r) in trace.records().enumerate() {
        match r.event {
            TraceEvent::Spawn { tid, core, .. }
            | TraceEvent::Wakeup { tid, core, .. }
            | TraceEvent::Preempt { tid, core, .. } => {
                queued.insert(
                    tid,
                    Waiting {
                        core,
                        since: r.time,
                        since_idx: i,
                        bypasses: 0,
                    },
                );
            }
            TraceEvent::Steal { tid, to, .. } => {
                // A migration keeps the wait clock running: the thread
                // is still runnable-and-not-running, just elsewhere.
                if let Some(w) = queued.get_mut(&tid) {
                    w.core = to;
                }
            }
            TraceEvent::Dispatch { tid, core } => {
                for (other, w) in queued.iter_mut() {
                    if *other != tid && w.core == core {
                        w.bypasses += 1;
                    }
                }
                if let Some(w) = queued.remove(&tid) {
                    flag(tid, &w, r.time, Some(i));
                }
            }
            TraceEvent::Done { tid } | TraceEvent::ThreadKilled { tid } => {
                queued.remove(&tid);
            }
            _ => {}
        }
    }
    // Threads still queued when the trace ends starved with no
    // terminating dispatch to cite.
    if let Some(end) = trace.records().last().map(|r| r.time) {
        let mut leftover: Vec<_> = queued.into_iter().collect();
        leftover.sort_by_key(|(tid, _)| *tid);
        for (tid, w) in leftover {
            flag(tid, &w, end, None);
        }
    }
    violations
}

/// The full happens-before suite over one trace: vector-clock data
/// races, lock-set violations, and the scheduler-policy lints
/// (stale-ranking placements, re-ranking hygiene, and fair-share
/// starvation), in canonical (kind, object, site) order with duplicates
/// removed.
pub fn check_concurrency(trace: &KernelTrace) -> Vec<Violation> {
    let mut violations = check_races(trace);
    violations.extend(check_locksets(trace));
    violations.extend(check_stale_ranking(trace));
    violations.extend(check_rerank_hygiene(trace));
    violations.extend(check_starvation(trace));
    crate::normalize_violations(violations)
}
