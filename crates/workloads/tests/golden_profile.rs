//! Golden run-profile regression test: the full rendered [`RunProfile`]
//! of one seeded SPECjbb cell — per-core utilization, fast-idle time,
//! migration counts, per-thread residency, sync waits, and both
//! scheduler histograms — must match `tests/golden_profile.txt` byte
//! for byte. Where `golden_hashes` pins the raw event streams, this
//! pins the derived observability layer on top of them: a change in
//! either the kernel's behaviour or the profile accounting shows up as
//! a readable diff of the report itself.
//!
//! To re-bless after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p asym-workloads --test golden_profile
//! ```

use asym_core::{
    AsymConfig, CellRunner, ExperimentOptions, ExperimentPlan, RunSetup, SpecMode, Workload,
};
use asym_kernel::{capture_traces, SchedPolicy};
use asym_obs::{profile_traces, ProfileMetrics};
use asym_workloads::specjbb::{GcKind, SpecJbb};
use std::fmt::Write as _;
use std::path::PathBuf;

const SEED: u64 = 42;

/// The pinned cell: the acceptance scenario from the observability
/// issue — SPECjbb with the concurrent collector on the half-speed
/// four-processor configuration under the stock policy.
fn pinned_cell() -> (SpecJbb, AsymConfig, SchedPolicy) {
    (
        SpecJbb::new(16).gc(GcKind::ConcurrentGenerational),
        AsymConfig::new(2, 2, 4),
        SchedPolicy::os_default(),
    )
}

fn rendered_profile() -> String {
    let (w, config, policy) = pinned_cell();
    let setup = RunSetup::new(config, policy, SEED);
    let (_, traces) = capture_traces(|| w.run(&setup));
    let profiles = profile_traces(&traces);
    assert!(!profiles.is_empty(), "run produced no kernel traces");
    let mut out = String::from(
        "# Golden rendered RunProfile: SPECjbb (concurrent GC) on 2f-2s/4,\n\
         # stock policy, seed 42. Regenerate with\n\
         # UPDATE_GOLDEN=1 cargo test -p asym-workloads --test golden_profile\n",
    );
    for p in &profiles {
        write!(out, "{p}").unwrap();
    }
    out
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_profile.txt")
}

#[test]
fn rendered_profile_matches_golden() {
    let current = rendered_profile();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &current).expect("write golden file");
        eprintln!("golden profile regenerated at {}", path.display());
        return;
    }
    let recorded = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        recorded, current,
        "rendered profile diverged from tests/golden_profile.txt; \
         if the change is intentional, re-bless with UPDATE_GOLDEN=1."
    );
}

/// Runs the pinned cell through the sweep engine with metrics enabled
/// at `jobs` host threads and returns the attached [`ProfileMetrics`].
fn engine_metrics(jobs: usize) -> Vec<Option<ProfileMetrics>> {
    let (w, config, policy) = pinned_cell();
    let mut plan = ExperimentPlan::new("golden-profile");
    plan.push(
        w.name(),
        &w,
        &[config],
        SpecMode::Clean {
            policy,
            options: ExperimentOptions::new(2).base_seed(SEED),
        },
    );
    let outcome = CellRunner::new(jobs).with_metrics(true).run(plan);
    outcome
        .report
        .cells
        .iter()
        .map(|c| c.metrics.clone())
        .collect()
}

/// The per-cell metrics the sweep JSON embeds must be present and
/// byte-identical whether the engine ran serially or on four host
/// threads — the profile layer inherits the engine's determinism
/// contract.
#[test]
fn engine_metrics_identical_across_jobs() {
    let serial = engine_metrics(1);
    let parallel = engine_metrics(4);
    assert!(
        serial.iter().all(|m| m.is_some()),
        "every clean cell must attach metrics when requested"
    );
    assert_eq!(
        serial, parallel,
        "per-cell profile metrics changed with host thread count"
    );
    for m in serial.into_iter().flatten() {
        assert!(serial_json_is_finite(&m));
    }
}

/// All numeric fields in the JSON encoding are plain integers or
/// fixed-decimal renderings — nothing NaN/inf can appear.
fn serial_json_is_finite(m: &ProfileMetrics) -> bool {
    let json = m.to_json();
    !json.contains("NaN") && !json.contains("inf") && !json.is_empty()
}
