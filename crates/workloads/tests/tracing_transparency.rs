//! Regression test: shared-access tracing is observationally transparent
//! to the scheduler. Running any workload with access tracing disabled
//! must produce exactly the same kernel event stream as running it with
//! tracing enabled and then erasing the annotation events
//! (`SharedRead`/`SharedWrite`/`SharedAtomic`/`ThreadJoin`) — same
//! events, same timestamps, same order. If instrumentation ever leaks
//! into a scheduling decision, the two streams diverge here.

use asym_core::{AsymConfig, RunSetup, Workload};
use asym_kernel::{capture_traces, set_access_tracing, SchedPolicy, TraceEvent, TraceRecord};
use asym_workloads::h264::H264;
use asym_workloads::japps::JAppServer;
use asym_workloads::pmake::Pmake;
use asym_workloads::specjbb::{GcKind, SpecJbb};
use asym_workloads::specomp::SpecOmp;
use asym_workloads::tpch::TpcH;
use asym_workloads::webserver::{Apache, LoadLevel, Zeus};

const SEED: u64 = 42;

fn workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(JAppServer::new(320.0)),
        Box::new(SpecJbb::new(16).gc(GcKind::ConcurrentGenerational)),
        Box::new(Apache::new(LoadLevel::light())),
        Box::new(Zeus::new(LoadLevel::light())),
        Box::new(TpcH::power_run()),
        Box::new(H264::new()),
        Box::new(SpecOmp::new("swim").work_scale(0.5)),
        Box::new(Pmake::new()),
    ]
}

fn is_annotation(event: &TraceEvent) -> bool {
    matches!(
        event,
        TraceEvent::SharedRead { .. }
            | TraceEvent::SharedWrite { .. }
            | TraceEvent::SharedAtomic { .. }
            | TraceEvent::ThreadJoin { .. }
    )
}

/// Restores the thread-local access-tracing flag on drop, so a failing
/// assertion cannot poison other tests on the same test thread.
struct TracingGuard(bool);

impl Drop for TracingGuard {
    fn drop(&mut self) {
        set_access_tracing(self.0);
    }
}

#[test]
fn access_tracing_never_changes_scheduling() {
    let matrix = [
        (AsymConfig::new(1, 3, 8), SchedPolicy::os_default()),
        (AsymConfig::new(4, 0, 8), SchedPolicy::asymmetry_aware()),
    ];
    for w in workloads() {
        for (config, policy) in matrix {
            let setup = RunSetup::new(config, policy, SEED);

            let guard = TracingGuard(set_access_tracing(true));
            let (_, on) = capture_traces(|| w.run(&setup));
            set_access_tracing(false);
            let (_, off) = capture_traces(|| w.run(&setup));
            drop(guard);

            let label = format!("{} on {config}", w.name());
            assert_eq!(
                on.len(),
                off.len(),
                "{label}: kernel count changed with tracing"
            );
            let mut saw_shared_access = false;
            for (t_on, t_off) in on.iter().zip(&off) {
                saw_shared_access |= t_on.records().any(|r| {
                    matches!(
                        r.event,
                        TraceEvent::SharedRead { .. }
                            | TraceEvent::SharedWrite { .. }
                            | TraceEvent::SharedAtomic { .. }
                    )
                });
                assert!(
                    !t_off.records().any(|r| is_annotation(&r.event)),
                    "{label}: annotation events leaked into a tracing-off run"
                );
                let scheduler_stream: Vec<TraceRecord> = t_on
                    .records()
                    .filter(|r| !is_annotation(&r.event))
                    .collect();
                assert_eq!(
                    scheduler_stream,
                    t_off.records_vec(),
                    "{label}: scheduler event stream differs with tracing on vs off"
                );
            }
            assert!(
                saw_shared_access,
                "{label}: workload emitted no shared-access events — instrumentation missing"
            );
        }
    }
}
