//! Golden trace-hash regression test: every workload's kernel event
//! stream, on a small fault-free matrix of configurations and policies,
//! must hash exactly as recorded in `tests/golden_hashes.txt`. Any
//! scheduler, sync-primitive, or workload change that shifts even one
//! trace event shows up here as a per-cell diff instead of silently
//! altering published results.
//!
//! To re-bless after an intentional behaviour change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p asym-workloads --test golden_hashes
//! ```

use asym_core::{
    AsymConfig, CellRunner, ExperimentOptions, ExperimentPlan, RunSetup, SpecMode, Workload,
};
use asym_kernel::{capture_traces, fold_trace_hashes, SchedPolicy};
use asym_workloads::h264::H264;
use asym_workloads::japps::JAppServer;
use asym_workloads::pmake::Pmake;
use asym_workloads::specjbb::{GcKind, SpecJbb};
use asym_workloads::specomp::SpecOmp;
use asym_workloads::tpch::TpcH;
use asym_workloads::webserver::{Apache, LoadLevel, Zeus};
use std::fmt::Write as _;
use std::path::PathBuf;

const SEED: u64 = 42;

fn workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(JAppServer::new(320.0)),
        Box::new(SpecJbb::new(16).gc(GcKind::ConcurrentGenerational)),
        Box::new(Apache::new(LoadLevel::light())),
        Box::new(Zeus::new(LoadLevel::light())),
        Box::new(TpcH::power_run()),
        Box::new(H264::new()),
        Box::new(SpecOmp::new("swim").work_scale(0.5)),
        Box::new(Pmake::new()),
    ]
}

fn matrix() -> Vec<(AsymConfig, SchedPolicy, &'static str)> {
    vec![
        (AsymConfig::new(1, 3, 8), SchedPolicy::os_default(), "stock"),
        (
            AsymConfig::new(1, 3, 8),
            SchedPolicy::asymmetry_aware(),
            "aware",
        ),
        (AsymConfig::new(4, 0, 8), SchedPolicy::os_default(), "stock"),
        (
            AsymConfig::new(4, 0, 8),
            SchedPolicy::asymmetry_aware(),
            "aware",
        ),
        // One representative config per tournament policy, keyed by its
        // registry name, so every policy in the zoo is pinned by at
        // least one golden cell.
        (
            AsymConfig::new(1, 3, 8),
            SchedPolicy::vruntime_fair(),
            "vrt-fair",
        ),
        (
            AsymConfig::new(2, 2, 8),
            SchedPolicy::static_priority(),
            "static-prio",
        ),
        (
            AsymConfig::new(1, 3, 8),
            SchedPolicy::speed_slice(),
            "speed-slice",
        ),
        (
            AsymConfig::new(2, 2, 8),
            SchedPolicy::work_stealing(),
            "steal-aware",
        ),
        (
            AsymConfig::new(1, 3, 8),
            SchedPolicy::temperature_aware(),
            "temp-aware",
        ),
    ]
}

/// Folds the per-kernel stable hashes of one run into a single cell
/// hash — the same [`fold_trace_hashes`] the sweep engine's JSON sink
/// records, so golden hashes and `BENCH_sweep.json` trace hashes are
/// directly comparable.
fn cell_hash(w: &dyn Workload, setup: &RunSetup) -> u64 {
    let (_, traces) = capture_traces(|| w.run(setup));
    assert!(!traces.is_empty(), "{}: run created no kernels", w.name());
    fold_trace_hashes(&traces)
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_hashes.txt")
}

fn render(cells: &[(String, u64)]) -> String {
    let mut out = String::from(
        "# Golden kernel-trace hashes (seed 42). Regenerate with\n\
         # UPDATE_GOLDEN=1 cargo test -p asym-workloads --test golden_hashes\n",
    );
    for (key, hash) in cells {
        writeln!(out, "{key} {hash:#018x}").unwrap();
    }
    out
}

#[test]
fn kernel_traces_match_golden_hashes() {
    let mut cells: Vec<(String, u64)> = Vec::new();
    for w in workloads() {
        for (config, policy, policy_name) in matrix() {
            let setup = RunSetup::new(config, policy, SEED);
            let key = format!("{}|{}|{}", w.name(), config, policy_name);
            cells.push((key, cell_hash(w.as_ref(), &setup)));
        }
    }

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, render(&cells)).expect("write golden file");
        eprintln!("golden hashes regenerated at {}", path.display());
        return;
    }

    let recorded = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    let golden: Vec<(String, u64)> = recorded
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (key, hash) = l.rsplit_once(' ').expect("golden line: <key> <hash>");
            let hash = u64::from_str_radix(hash.trim_start_matches("0x"), 16)
                .unwrap_or_else(|e| panic!("bad hash in golden line {l:?}: {e}"));
            (key.to_string(), hash)
        })
        .collect();

    // Per-cell diff: name every mismatched, missing, and stale cell
    // rather than failing on the first one.
    let mut diff = String::new();
    for (key, hash) in &cells {
        match golden.iter().find(|(k, _)| k == key) {
            None => writeln!(diff, "  NEW cell not in golden file: {key}").unwrap(),
            Some((_, want)) if want != hash => writeln!(
                diff,
                "  MISMATCH {key}: golden {want:#018x}, current {hash:#018x}"
            )
            .unwrap(),
            Some(_) => {}
        }
    }
    for (key, _) in &golden {
        if !cells.iter().any(|(k, _)| k == key) {
            writeln!(diff, "  STALE golden cell no longer produced: {key}").unwrap();
        }
    }
    assert!(
        diff.is_empty(),
        "kernel traces diverged from golden hashes:\n{diff}\
         If the change is intentional, re-bless with UPDATE_GOLDEN=1."
    );
}

/// Runs a 2-workload × 9-configuration mini-sweep through the cell
/// engine at `jobs` host threads and returns the rendered experiment
/// tables plus the per-cell trace hashes from the engine's report.
fn mini_sweep(jobs: usize) -> (String, Vec<Option<u64>>) {
    let h264 = H264::new();
    let pmake = Pmake::new();
    let nine = AsymConfig::standard_nine();
    let mut plan = ExperimentPlan::new("golden-mini");
    for w in [&h264 as &dyn Workload, &pmake as &dyn Workload] {
        plan.push(
            w.name(),
            w,
            &nine,
            SpecMode::Clean {
                policy: SchedPolicy::os_default(),
                options: ExperimentOptions::new(2),
            },
        );
    }
    let outcome = CellRunner::new(jobs).run(plan);
    let mut rendered = String::new();
    for r in &outcome.results {
        writeln!(rendered, "{}", r.clean()).unwrap();
    }
    let hashes = outcome.report.cells.iter().map(|c| c.trace_hash).collect();
    (rendered, hashes)
}

/// Runs H264 under every registered policy on one asymmetric config
/// through the cell engine at `jobs` host threads — the policy-zoo
/// analogue of [`mini_sweep`].
fn zoo_sweep(jobs: usize) -> (String, Vec<Option<u64>>) {
    let h264 = H264::new();
    let config = [AsymConfig::new(1, 3, 8)];
    let mut plan = ExperimentPlan::new("golden-zoo");
    for (name, policy) in SchedPolicy::registry() {
        plan.push(
            name,
            &h264,
            &config,
            SpecMode::Clean {
                policy,
                options: ExperimentOptions::new(2),
            },
        );
    }
    let outcome = CellRunner::new(jobs).run(plan);
    let mut rendered = String::new();
    for r in &outcome.results {
        writeln!(rendered, "{}", r.clean()).unwrap();
    }
    let hashes = outcome.report.cells.iter().map(|c| c.trace_hash).collect();
    (rendered, hashes)
}

/// Every registered policy must be jobs-independent through the cell
/// engine: identical per-cell trace hashes and rendered tables at
/// `--jobs 1` and `--jobs 4`.
#[test]
fn policy_zoo_sweep_is_identical_across_jobs() {
    let (serial_text, serial_hashes) = zoo_sweep(1);
    let (parallel_text, parallel_hashes) = zoo_sweep(4);
    // Two runs per policy (`ExperimentOptions::new(2)`) → two cells each.
    assert_eq!(
        serial_hashes.len(),
        2 * SchedPolicy::registry().len(),
        "two cells per registered policy"
    );
    assert!(
        serial_hashes.iter().all(|h| h.is_some()),
        "every clean cell must record a trace hash"
    );
    assert_eq!(
        serial_hashes, parallel_hashes,
        "per-cell trace hashes changed with host thread count"
    );
    assert_eq!(
        serial_text, parallel_text,
        "rendered output changed with host thread count"
    );
}

/// Host parallelism must be invisible in the results: the same plan at
/// `--jobs 1` and `--jobs 4` must render byte-identical tables and
/// record identical per-cell trace hashes.
#[test]
fn mini_sweep_is_identical_across_jobs() {
    let (serial_text, serial_hashes) = mini_sweep(1);
    let (parallel_text, parallel_hashes) = mini_sweep(4);
    assert!(
        serial_hashes.iter().all(|h| h.is_some()),
        "every clean cell must record a trace hash"
    );
    assert_eq!(
        serial_hashes, parallel_hashes,
        "per-cell trace hashes changed with host thread count"
    );
    assert_eq!(
        serial_text, parallel_text,
        "rendered output changed with host thread count"
    );
}
