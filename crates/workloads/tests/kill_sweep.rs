//! End-to-end kill tolerance: every workload, under both scheduling
//! policies, survives a fault plan that kills threads mid-run. The run
//! must complete without panicking and the result must carry a
//! `lost_workers` extra matching the kernel's kill count.

use asym_core::{AsymConfig, RunSetup, Workload};
use asym_kernel::{capture_traces, with_run_guard, RunGuard, RunOutcome, SchedPolicy, TraceEvent};
use asym_sim::{FaultPlan, FaultProfile, SimDuration};
use asym_workloads::h264::H264;
use asym_workloads::japps::JAppServer;
use asym_workloads::pmake::Pmake;
use asym_workloads::specjbb::{GcKind, SpecJbb};
use asym_workloads::specomp::SpecOmp;
use asym_workloads::tpch::TpcH;
use asym_workloads::webserver::{Apache, LoadLevel, Zeus};

fn workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(JAppServer::new(320.0)),
        Box::new(SpecJbb::new(16).gc(GcKind::ConcurrentGenerational)),
        Box::new(Apache::new(LoadLevel::light())),
        Box::new(Zeus::new(LoadLevel::light())),
        Box::new(TpcH::power_run()),
        Box::new(H264::new()),
        Box::new(SpecOmp::new("swim").work_scale(0.5)),
        Box::new(Pmake::new()),
    ]
}

/// Kills only — no throttling or hotplug noise — early in the run, so
/// every workload sees them before it finishes.
fn kill_plan(seed: u64, num_cores: usize) -> FaultPlan {
    let profile = FaultProfile {
        thread_kills: 2,
        ..FaultProfile::quiet(SimDuration::from_millis(500))
    };
    FaultPlan::generate(seed, num_cores, &profile)
}

#[test]
fn every_workload_survives_kills_under_both_policies() {
    let config = AsymConfig::new(1, 3, 8);
    for w in workloads() {
        for policy in [SchedPolicy::os_default(), SchedPolicy::asymmetry_aware()] {
            for seed in [7u64, 19] {
                let setup = RunSetup::new(config, policy, seed);
                let guard = RunGuard::new()
                    .watchdog(SimDuration::from_secs(5))
                    .sim_time_budget(SimDuration::from_secs(120))
                    .fault_plan(kill_plan(seed, config.num_cores() as usize));
                let (result, traces) = capture_traces(|| with_run_guard(guard, || w.run(&setup)));
                let label = format!("{} / {policy} / seed {seed}", w.name());
                for t in &traces {
                    assert!(
                        !matches!(
                            t.outcome,
                            Some(RunOutcome::Deadlock(_) | RunOutcome::Stalled)
                        ),
                        "{label}: kernel ended {:?}",
                        t.outcome
                    );
                    assert!(!t.budget_exhausted, "{label}: budget exhausted");
                }
                let lost = result
                    .extras
                    .get("lost_workers")
                    .unwrap_or_else(|| panic!("{label}: no lost_workers extra"));
                let killed: usize = traces
                    .iter()
                    .flat_map(|t| t.records())
                    .filter(|r| matches!(r.event, TraceEvent::ThreadKilled { .. }))
                    .count();
                assert_eq!(
                    *lost, killed as f64,
                    "{label}: lost_workers extra disagrees with trace kill count"
                );
            }
        }
    }
}
