//! H.264 multithreaded media encoding model (§3.6).
//!
//! The workload follows the paper's description: a main thread performs
//! serial pre-processing and post-processing per frame (2–5% of CPU time),
//! and four encoder threads process macro-block tasks with the standard
//! H.264 spatial wavefront dependence (a block needs its upper
//! neighbours) plus temporal parallelism across a window of in-flight
//! frames.
//!
//! Because encoder threads pick up whatever macro-block rows are *ready*
//! — on-demand, not statically partitioned — the application is stable
//! and predictably scalable, and a single fast core visibly helps: the
//! paper's point 3, "an asymmetric chip multiprocessor is better than a
//! chip multiprocessor where all cores are slow."

use asym_core::{Direction, RunResult, RunSetup, Workload};
use asym_kernel::{Kernel, SpawnOptions, Step, ThreadBody, ThreadCx, ThreadId, WaitId};
use asym_sim::{Cycles, Rng};
use asym_sync::{SimQueue, SimShared, TryPop};
use std::rc::Rc;

/// Tuning constants for the H.264 model. Runtimes are scaled ~10× down
/// from Figure 9(a); the configuration shape is the result.
#[derive(Debug, Clone)]
pub struct H264Params {
    /// Frames to encode.
    pub frames: u32,
    /// Macro-block rows per frame (720p has 45).
    pub rows: u32,
    /// Segments each row is split into; the wavefront dependence runs at
    /// segment granularity, giving a diagonal front of parallel work.
    pub segments: u32,
    /// Encoder threads (the paper's application has 4 + the main thread).
    pub encoder_threads: usize,
    /// Frames that may be in flight concurrently (temporal parallelism).
    pub frame_window: u32,
    /// Cost of one half-row task at full speed.
    pub task_cost: Cycles,
    /// Relative jitter on task cost (uniform ±).
    pub jitter: f64,
    /// Serial pre-processing per frame (main thread).
    pub pre_cost: Cycles,
    /// Serial post-processing per frame (main thread).
    pub post_cost: Cycles,
}

impl Default for H264Params {
    fn default() -> Self {
        H264Params {
            frames: 80,
            rows: 45,
            segments: 8,
            encoder_threads: 4,
            frame_window: 6,
            task_cost: Cycles::from_micros_at_full_speed(112.0),
            jitter: 0.25,
            pre_cost: Cycles::from_micros_at_full_speed(300.0),
            post_cost: Cycles::from_micros_at_full_speed(600.0),
        }
    }
}

/// The H.264 encoder workload. Primary metric: runtime in seconds.
#[derive(Debug, Clone, Default)]
pub struct H264 {
    /// Model constants.
    pub params: H264Params,
}

impl H264 {
    /// The default encoding job.
    pub fn new() -> Self {
        H264::default()
    }

    /// Scales the frame count (for fast tests).
    pub fn frames(mut self, frames: u32) -> Self {
        self.params.frames = frames;
        self
    }
}

/// One row-segment encoding task.
#[derive(Debug, Clone, Copy)]
struct Task {
    frame: u32,
    row: u32,
    seg: u32,
}

struct EncShared {
    ready: SimQueue<Task>,
    /// Per-frame count of completed tasks. Modeled atomic, one word per
    /// window slot: encoders on different rows increment concurrently.
    frame_done_tasks: SimShared<Vec<u32>>,
    /// Completion state of each (frame, row, segment) within the window.
    /// Modeled atomic (word = window slot): real wavefront encoders use
    /// atomic dependence flags, and neighbours poll them unordered.
    done: SimShared<Vec<Vec<Vec<bool>>>>,
    rows: u32,
    segments: u32,
    tasks_per_frame: u32,
    /// Modeled atomic counter.
    frames_completed: SimShared<u64>,
    /// Per-frame completion flags (frames can finish out of order).
    /// Modeled atomic, one word per frame.
    complete_flags: SimShared<Vec<bool>>,
    /// Frames completed *consecutively* from frame 0 — the temporal
    /// window gates on this, so a slot is never reset under a
    /// still-incomplete older frame. Modeled atomic.
    watermark: SimShared<u64>,
    main_wake: WaitId,
    /// Per-encoder in-flight task, published before each compute burst so
    /// the main thread can requeue the work of a killed encoder. Plain
    /// per-encoder words: only the owner touches a live slot, and the
    /// main thread reads it only after joining the dead encoder.
    serving: SimShared<Vec<Option<Task>>>,
}

impl EncShared {
    fn frame_slot(&self, frame: u32) -> usize {
        (frame as usize) % self.done.peek(|d| d.len())
    }

    fn reset_frame(&self, cx: &mut ThreadCx<'_>, frame: u32) {
        let slot = self.frame_slot(frame);
        self.done.store_at(cx, slot as u32, |done| {
            for row in done[slot].iter_mut() {
                row.fill(false);
            }
        });
        self.frame_done_tasks
            .store_at(cx, slot as u32, |c| c[slot] = 0);
    }

    fn is_done(&self, cx: &mut ThreadCx<'_>, frame: u32, row: u32, seg: u32) -> bool {
        let slot = self.frame_slot(frame);
        self.done
            .load_at(cx, slot as u32, |d| d[slot][row as usize][seg as usize])
    }

    /// Marks a task done; returns newly-ready successor tasks and whether
    /// the frame is now complete.
    ///
    /// A segment `(r, s)` depends on its left neighbour `(r, s-1)` and,
    /// for the motion-estimation context, on the upper-right segment
    /// `(r-1, min(s+1, last))` — the standard macro-block wavefront.
    fn complete(&self, cx: &mut ThreadCx<'_>, t: Task) -> (Vec<Task>, bool) {
        let slot = self.frame_slot(t.frame);
        self.done.store_at(cx, slot as u32, |done| {
            assert!(
                !done[slot][t.row as usize][t.seg as usize],
                "task f{} r{} s{} executed twice",
                t.frame, t.row, t.seg
            );
            done[slot][t.row as usize][t.seg as usize] = true;
        });
        let last = self.segments - 1;
        let mut ready = Vec::new();
        // Right neighbour in the same row (we are its left predecessor).
        if t.seg < last && self.pred_done(cx, t.frame, t.row, t.seg + 1) {
            ready.push(Task {
                frame: t.frame,
                row: t.row,
                seg: t.seg + 1,
            });
        }
        // Next-row segments for which we are the upper-right context:
        // (r+1, s-1) always; additionally (r+1, last) when we are the
        // last segment (its context is clamped to us).
        if t.row + 1 < self.rows {
            let mut candidates = Vec::new();
            if t.seg > 0 {
                candidates.push(t.seg - 1);
            }
            if t.seg == last {
                candidates.push(last);
            }
            for seg in candidates {
                if self.pred_done(cx, t.frame, t.row + 1, seg) {
                    ready.push(Task {
                        frame: t.frame,
                        row: t.row + 1,
                        seg,
                    });
                }
            }
        }
        let tasks_per_frame = self.tasks_per_frame;
        let frame_complete = self.frame_done_tasks.rmw_at(cx, slot as u32, |c| {
            c[slot] += 1;
            c[slot] == tasks_per_frame
        });
        if frame_complete {
            self.frames_completed.rmw(cx, |c| *c += 1);
            let frame = t.frame as usize;
            self.complete_flags
                .store_at(cx, t.frame, |f| f[frame] = true);
            let nframes = self.complete_flags.peek(|f| f.len());
            loop {
                let wm = self.watermark.load(cx, |w| *w) as usize;
                if wm >= nframes || !self.complete_flags.load_at(cx, wm as u32, |f| f[wm]) {
                    break;
                }
                self.watermark.rmw(cx, |w| *w += 1);
            }
        }
        (ready, frame_complete)
    }

    /// All predecessors of (frame, row, seg) are complete (and the task
    /// itself has not already run).
    fn pred_done(&self, cx: &mut ThreadCx<'_>, frame: u32, row: u32, seg: u32) -> bool {
        if self.is_done(cx, frame, row, seg) {
            return false; // already executed
        }
        let last = self.segments - 1;
        let left_ok = seg == 0 || self.is_done(cx, frame, row, seg - 1);
        let up_ok = row == 0 || self.is_done(cx, frame, row - 1, (seg + 1).min(last));
        left_ok && up_ok
    }
}

struct Encoder {
    shared: Rc<EncShared>,
    /// This encoder's slot in `EncShared::serving` (doubles as the
    /// in-flight task store, so a kill mid-compute leaves the task
    /// visible for requeueing).
    slot: usize,
    cost: Cycles,
    jitter: f64,
    rng: Rng,
    name: String,
}

impl ThreadBody for Encoder {
    fn run(&mut self, cx: &mut ThreadCx<'_>) -> Step {
        let slot = self.slot;
        let in_flight = self
            .shared
            .serving
            .write_at(cx, slot as u32, |s| s[slot].take());
        if let Some(task) = in_flight {
            let (ready, frame_complete) = self.shared.complete(cx, task);
            for t in ready {
                self.shared.ready.push(cx, t);
            }
            if frame_complete {
                cx.notify_all(self.shared.main_wake);
            }
        }
        match self.shared.ready.try_pop(cx) {
            TryPop::Item(task) => {
                self.shared
                    .serving
                    .write_at(cx, slot as u32, |s| s[slot] = Some(task));
                let jitter = 1.0 + self.jitter * (2.0 * self.rng.next_f64() - 1.0);
                Step::Compute(Cycles::new((self.cost.get() as f64 * jitter) as u64))
            }
            TryPop::Empty(step) => step,
            TryPop::Closed => Step::Done,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MainPhase {
    PreProcess,
    Seed,
    WaitWindow,
    PostProcess,
    Finish,
}

/// The main thread: serial pre/post-processing and frame-window control.
/// Doubles as the supervisor under injected kills: it requeues the task a
/// dead encoder was holding and, if the whole pool dies, encodes the
/// remaining tasks itself so the job still completes.
struct MainThread {
    shared: Rc<EncShared>,
    frames: u32,
    window: u32,
    next_frame: u32,
    posted_frames: u32,
    phase: MainPhase,
    pre: Cycles,
    post: Cycles,
    encoder_tids: Vec<ThreadId>,
    reaped: Vec<bool>,
    killed_seen: u64,
    /// Task the main thread itself is encoding (pool-exhausted fallback).
    fallback: Option<Task>,
    task_cost: Cycles,
}

impl MainThread {
    /// Requeues the in-flight work of encoders killed by injected faults.
    fn reap_dead(&mut self, cx: &mut ThreadCx<'_>) {
        let killed = cx.killed_count();
        if killed == self.killed_seen {
            return;
        }
        self.killed_seen = killed;
        for e in 0..self.encoder_tids.len() {
            if !self.reaped[e] && cx.join_check(self.encoder_tids[e]) {
                self.reaped[e] = true;
                let lost = self.shared.serving.write_at(cx, e as u32, |s| s[e].take());
                if let Some(task) = lost {
                    self.shared.ready.push(cx, task);
                }
            }
        }
    }

    fn pool_dead(&self) -> bool {
        self.reaped.iter().all(|&r| r)
    }

    /// When no encoder survives, the main thread works the wavefront
    /// itself; returns the compute step for the next task, if any.
    fn encode_fallback(&mut self, cx: &mut ThreadCx<'_>) -> Option<Step> {
        if !self.pool_dead() {
            return None;
        }
        match self.shared.ready.try_pop(cx) {
            TryPop::Item(task) => {
                self.fallback = Some(task);
                Some(Step::Compute(self.task_cost))
            }
            TryPop::Empty(_) | TryPop::Closed => None,
        }
    }
}

impl ThreadBody for MainThread {
    fn run(&mut self, cx: &mut ThreadCx<'_>) -> Step {
        self.reap_dead(cx);
        if let Some(task) = self.fallback.take() {
            let (ready, _) = self.shared.complete(cx, task);
            for t in ready {
                self.shared.ready.push(cx, t);
            }
        }
        loop {
            match self.phase {
                MainPhase::PreProcess => {
                    // Post-processing of completed frames takes priority
                    // (it interleaves with pre-processing of later ones).
                    if self.posted_frames < self.shared.watermark.load(cx, |w| *w) as u32 {
                        self.posted_frames += 1;
                        return Step::Compute(self.post);
                    }
                    if self.next_frame == self.frames {
                        self.phase = MainPhase::PostProcess;
                        continue;
                    }
                    // Respect the temporal window, gated on the oldest
                    // incomplete frame.
                    if self.next_frame
                        >= self.shared.watermark.load(cx, |w| *w) as u32 + self.window
                    {
                        self.phase = MainPhase::WaitWindow;
                        continue;
                    }
                    self.phase = MainPhase::Seed;
                    return Step::Compute(self.pre);
                }
                MainPhase::Seed => {
                    let frame = self.next_frame;
                    self.next_frame += 1;
                    self.shared.reset_frame(cx, frame);
                    self.shared.ready.push(
                        cx,
                        Task {
                            frame,
                            row: 0,
                            seg: 0,
                        },
                    );
                    self.phase = MainPhase::PreProcess;
                }
                MainPhase::WaitWindow => {
                    if self.next_frame < self.shared.watermark.load(cx, |w| *w) as u32 + self.window
                    {
                        self.phase = MainPhase::PreProcess;
                        continue;
                    }
                    if let Some(step) = self.encode_fallback(cx) {
                        return step;
                    }
                    return Step::Block(self.shared.main_wake);
                }
                MainPhase::PostProcess => {
                    // Post-process every completed frame (serial work),
                    // then either wait for more or finish.
                    if self.posted_frames < self.shared.watermark.load(cx, |w| *w) as u32 {
                        self.posted_frames += 1;
                        return Step::Compute(self.post);
                    }
                    if self.posted_frames == self.frames {
                        self.phase = MainPhase::Finish;
                        continue;
                    }
                    if self.next_frame < self.frames {
                        self.phase = MainPhase::PreProcess;
                        continue;
                    }
                    if let Some(step) = self.encode_fallback(cx) {
                        return step;
                    }
                    return Step::Block(self.shared.main_wake);
                }
                MainPhase::Finish => {
                    self.shared.ready.close(cx);
                    return Step::Done;
                }
            }
        }
    }

    fn name(&self) -> &str {
        "h264-main"
    }
}

impl Workload for H264 {
    fn name(&self) -> &str {
        "H.264"
    }

    fn spec_key(&self) -> String {
        format!("{} {:?}", self.name(), self)
    }

    fn unit(&self) -> &str {
        "seconds"
    }

    fn direction(&self) -> Direction {
        Direction::LowerIsBetter
    }

    fn run(&self, setup: &RunSetup) -> RunResult {
        let p = &self.params;
        assert!(
            p.frames > 0 && p.rows > 1 && p.segments > 0,
            "H.264 needs frames, rows, and segments"
        );
        let mut kernel = Kernel::new(setup.config.machine(), setup.policy, setup.seed);
        let mut seed_rng = Rng::new(setup.seed ^ 0x4264_0000_0000_0006);

        let main_wake = kernel.create_wait_queue();
        let window = p.frame_window.max(1) as usize;
        let shared = Rc::new(EncShared {
            ready: SimQueue::new(&mut kernel),
            frame_done_tasks: SimShared::new(&mut kernel, "h264.frame_done_tasks", vec![0; window]),
            done: SimShared::new(
                &mut kernel,
                "h264.wavefront_done",
                vec![vec![vec![false; p.segments as usize]; p.rows as usize]; window],
            ),
            rows: p.rows,
            segments: p.segments,
            tasks_per_frame: p.rows * p.segments,
            frames_completed: SimShared::new(&mut kernel, "h264.frames_completed", 0),
            complete_flags: SimShared::new(
                &mut kernel,
                "h264.complete_flags",
                vec![false; p.frames as usize],
            ),
            watermark: SimShared::new(&mut kernel, "h264.watermark", 0),
            main_wake,
            serving: SimShared::new(&mut kernel, "h264.serving", vec![None; p.encoder_threads]),
        });

        let mut encoder_tids = Vec::new();
        let ncores = setup.config.num_cores() as usize;
        for e in 0..p.encoder_threads {
            // The multithreaded encoder the paper references sets thread
            // affinity: one encoder thread per processor.
            let core = asym_sim::CoreId(e % ncores);
            let tid = kernel.spawn(
                Encoder {
                    shared: shared.clone(),
                    slot: e,
                    cost: p.task_cost,
                    jitter: p.jitter,
                    rng: seed_rng.fork(),
                    name: format!("encoder{e}"),
                },
                SpawnOptions::new().affinity(asym_sim::CoreMask::single(core)),
            );
            encoder_tids.push(tid);
        }
        // The main thread is the supervisor process: injected kills take
        // encoders, never the control thread that reaps them.
        let main_tid = kernel.spawn(
            MainThread {
                shared: shared.clone(),
                frames: p.frames,
                window: p.frame_window,
                next_frame: 0,
                posted_frames: 0,
                phase: MainPhase::PreProcess,
                pre: p.pre_cost,
                post: p.post_cost,
                encoder_tids: encoder_tids.clone(),
                reaped: vec![false; p.encoder_threads],
                killed_seen: 0,
                fallback: None,
                task_cost: p.task_cost,
            },
            SpawnOptions::new().kill_exempt(),
        );

        let outcome = kernel.run();
        if outcome != asym_kernel::RunOutcome::AllDone {
            eprintln!(
                "H264 DEADLOCK: completed={} ready_len={} counts={:?}",
                shared.frames_completed.peek(|c| *c),
                shared.ready.len(),
                shared.frame_done_tasks.peek(|c| c.clone())
            );
        }
        assert_eq!(
            outcome,
            asym_kernel::RunOutcome::AllDone,
            "H.264 encode did not complete"
        );
        assert_eq!(shared.frames_completed.peek(|c| *c), u64::from(p.frames));
        let lost_workers = kernel.stats().threads_killed;
        let main_stats = kernel.thread_stats(main_tid);
        let encoder_migrations: u64 = encoder_tids
            .iter()
            .map(|&t| kernel.thread_stats(t).migrations)
            .sum();
        RunResult::new(kernel.now().as_secs_f64())
            .with_extra("main_cpu_s", main_stats.cpu_time.as_secs_f64())
            .with_extra("main_blocked_s", main_stats.blocked_time.as_secs_f64())
            .with_extra("encoder_migrations", encoder_migrations as f64)
            .with_extra("lost_workers", lost_workers as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_core::AsymConfig;
    use asym_kernel::SchedPolicy;

    fn quick(config: AsymConfig, seed: u64) -> f64 {
        H264::new()
            .frames(16)
            .run(&RunSetup::new(config, SchedPolicy::os_default(), seed))
            .value
    }

    #[test]
    fn encodes_all_frames_and_scales() {
        let fast = quick(AsymConfig::new(4, 0, 1), 1);
        let slow = quick(AsymConfig::new(0, 4, 8), 1);
        assert!(slow > 5.0 * fast, "fast {fast} slow {slow}");
    }

    #[test]
    fn stable_across_runs_even_on_asymmetric() {
        // Steady-state run (short runs carry pipeline fill/drain noise).
        let runs: Vec<f64> = (0..4)
            .map(|s| {
                H264::new()
                    .frames(40)
                    .run(&RunSetup::new(
                        AsymConfig::new(2, 2, 8),
                        SchedPolicy::os_default(),
                        s,
                    ))
                    .value
            })
            .collect();
        let mean = runs.iter().sum::<f64>() / runs.len() as f64;
        let spread = (runs.iter().cloned().fold(f64::MIN, f64::max)
            - runs.iter().cloned().fold(f64::MAX, f64::min))
            / mean;
        assert!(spread < 0.08, "H.264 should be stable: {runs:?}");
    }

    #[test]
    fn one_fast_core_beats_all_slow() {
        // 1f-3s/8 (power 1.375) must clearly beat 0f-4s/8 (0.5) and even
        // 0f-4s/4 (1.0): the fast core takes over work (paper §3.6).
        let one_fast = quick(AsymConfig::new(1, 3, 8), 2);
        let all_slow4 = quick(AsymConfig::new(0, 4, 4), 2);
        let all_slow8 = quick(AsymConfig::new(0, 4, 8), 2);
        assert!(one_fast < all_slow8, "{one_fast} vs {all_slow8}");
        assert!(one_fast < all_slow4, "{one_fast} vs {all_slow4}");
    }

    #[test]
    fn wavefront_allows_real_parallelism() {
        // 4 cores should be at least 2.5x faster than 1 core.
        let quad = quick(AsymConfig::new(4, 0, 1), 3);
        let uni = quick(AsymConfig::new(1, 0, 1), 3);
        assert!(
            uni > 2.5 * quad,
            "wavefront parallelism missing: {uni} vs {quad}"
        );
    }
}
