//! Shared plumbing for the workload models: counters, response-time
//! recorders, and measurement-window helpers.

use asym_sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// A shared event counter (transactions completed, requests served, …)
/// with cheap clone-by-handle semantics inside one simulation.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    inner: Rc<RefCell<u64>>,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&self) {
        *self.inner.borrow_mut() += 1;
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        *self.inner.borrow_mut() += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        *self.inner.borrow()
    }
}

/// A shared recorder of response times (or any duration samples).
#[derive(Debug, Clone, Default)]
pub struct DurationRecorder {
    samples: Rc<RefCell<Vec<SimDuration>>>,
}

impl DurationRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        DurationRecorder::default()
    }

    /// Records one sample.
    pub fn record(&self, d: SimDuration) {
        self.samples.borrow_mut().push(d);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.borrow().len()
    }

    /// Returns `true` with no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.borrow().is_empty()
    }

    /// Discards all samples (used at the end of a ramp-up window).
    pub fn clear(&self) {
        self.samples.borrow_mut().clear();
    }

    /// Mean in seconds; 0 when empty.
    pub fn mean_secs(&self) -> f64 {
        let s = self.samples.borrow();
        if s.is_empty() {
            return 0.0;
        }
        s.iter().map(|d| d.as_secs_f64()).sum::<f64>() / s.len() as f64
    }

    /// Maximum in seconds; 0 when empty.
    pub fn max_secs(&self) -> f64 {
        self.samples
            .borrow()
            .iter()
            .map(|d| d.as_secs_f64())
            .fold(0.0, f64::max)
    }

    /// Linear-interpolated percentile in seconds; 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile_secs(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        let mut s: Vec<f64> = self
            .samples
            .borrow()
            .iter()
            .map(|d| d.as_secs_f64())
            .collect();
        if s.is_empty() {
            return 0.0;
        }
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        if s.len() == 1 {
            return s[0];
        }
        let rank = p / 100.0 * (s.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        s[lo] * (1.0 - frac) + s[hi] * frac
    }
}

/// Computes a throughput (events/second) over a measurement window.
///
/// # Panics
///
/// Panics if the window is empty.
pub fn throughput_per_sec(events: u64, window: SimDuration) -> f64 {
    assert!(!window.is_zero(), "empty measurement window");
    events as f64 / window.as_secs_f64()
}

/// The start/end of a measurement window after ramp-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Warm-up before measurement starts.
    pub ramp: SimDuration,
    /// Length of the measured steady state.
    pub steady: SimDuration,
}

impl Window {
    /// Creates a window.
    pub fn new(ramp: SimDuration, steady: SimDuration) -> Self {
        Window { ramp, steady }
    }

    /// When measurement begins.
    pub fn start(&self) -> SimTime {
        SimTime::ZERO + self.ramp
    }

    /// When measurement ends.
    pub fn end(&self) -> SimTime {
        SimTime::ZERO + self.ramp + self.steady
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        let c2 = c.clone();
        c.incr();
        c2.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn recorder_percentiles() {
        let r = DurationRecorder::new();
        for ms in [10u64, 20, 30, 40, 50] {
            r.record(SimDuration::from_millis(ms));
        }
        assert_eq!(r.len(), 5);
        assert!((r.mean_secs() - 0.030).abs() < 1e-12);
        assert!((r.percentile_secs(50.0) - 0.030).abs() < 1e-12);
        assert!((r.max_secs() - 0.050).abs() < 1e-12);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.percentile_secs(90.0), 0.0);
    }

    #[test]
    fn throughput_math() {
        assert_eq!(throughput_per_sec(500, SimDuration::from_secs(2)), 250.0);
    }

    #[test]
    fn window_bounds() {
        let w = Window::new(SimDuration::from_secs(1), SimDuration::from_secs(4));
        assert_eq!(w.start().as_nanos(), 1_000_000_000);
        assert_eq!(w.end().as_nanos(), 5_000_000_000);
    }
}
