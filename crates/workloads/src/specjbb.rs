//! SPECjbb2000 model (§3.1): a saturated Java middle-tier server.
//!
//! Each *warehouse* is a thread executing back-to-back business
//! transactions against a memory-resident store, allocating heap as it
//! goes. Two garbage collectors are modelled, matching the paper's study:
//!
//! * **parallel (stop-the-world)** — when allocation crosses a threshold
//!   every warehouse thread stops at its next transaction boundary; the
//!   stopped threads collect in parallel (each takes an equal share), so
//!   the pause is paced by the slowest core — "well suited for
//!   high-throughput workloads", minor instability;
//! * **generational concurrent** — a single collector thread reclaims
//!   continuously while the application runs. Whether that thread lands on
//!   a fast or slow core decides whether it keeps up with the allocation
//!   rate; when it falls behind, the heap fills and every warehouse thread
//!   stalls. This is the placement lottery behind Figure 1(b)'s large
//!   run-to-run swings.
//!
//! The simulated virtual machines differ only in constants: `HotSpot`
//! carries a slightly higher per-transaction cost than `JRockit`,
//! mirroring the throughput gap in Figure 1(a).

use crate::common::{throughput_per_sec, Window};
use asym_core::{Direction, RunResult, RunSetup, Workload};
use asym_kernel::{Kernel, SpawnOptions, Step, ThreadBody, ThreadCx, ThreadId, WaitId};
use asym_sim::{Cycles, Rng, SimDuration};
use asym_sync::{Arrival, SimBarrier, SimShared};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Which virtual machine the application server runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JvmKind {
    /// BEA WebLogic JRockit 8.1 (the faster VM in the paper's setup).
    JRockit,
    /// Sun HotSpot 1.4.2.
    HotSpot,
}

impl JvmKind {
    /// Per-transaction cost multiplier relative to JRockit.
    fn tx_cost_factor(self) -> f64 {
        match self {
            JvmKind::JRockit => 1.0,
            JvmKind::HotSpot => 1.18,
        }
    }
}

/// Which garbage collector the VM uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GcKind {
    /// Parallel stop-the-world collector.
    Parallel,
    /// Generational concurrent collector (single collector thread).
    ConcurrentGenerational,
}

/// Tuning constants for the SPECjbb model. The defaults are calibrated so
/// a 4f-0s machine sustains roughly 50k transactions/second at saturation,
/// echoing the scale of the paper's Figure 1.
#[derive(Debug, Clone)]
pub struct SpecJbbParams {
    /// Mean transaction cost at full speed.
    pub tx_cost: Cycles,
    /// Relative jitter on per-transaction cost (uniform ±).
    pub tx_jitter: f64,
    /// Heap allocated per transaction, bytes.
    pub alloc_per_tx: u64,
    /// Parallel GC: allocation threshold that triggers a collection.
    pub stw_threshold: u64,
    /// Parallel GC: collection cost per byte of threshold, cycles.
    pub stw_cost_per_byte: f64,
    /// Concurrent GC: reclamation cost per byte, cycles.
    pub concurrent_cost_per_byte: f64,
    /// Concurrent GC: backlog that starts a marking cycle.
    pub cycle_trigger: u64,
    /// Concurrent GC: backlog at which warehouses stall.
    pub heap_hard_limit: u64,
    /// Concurrent GC: backlog below which stalled warehouses resume.
    pub heap_resume: u64,
    /// Measurement window.
    pub window: Window,
}

impl Default for SpecJbbParams {
    fn default() -> Self {
        SpecJbbParams {
            tx_cost: Cycles::from_micros_at_full_speed(70.0),
            tx_jitter: 0.3,
            alloc_per_tx: 40 * 1024,
            stw_threshold: 48 * 1024 * 1024,
            stw_cost_per_byte: 0.25,
            concurrent_cost_per_byte: 0.40,
            cycle_trigger: 16 * 1024 * 1024,
            heap_hard_limit: 96 * 1024 * 1024,
            heap_resume: 24 * 1024 * 1024,
            window: Window::new(
                SimDuration::from_millis(300),
                SimDuration::from_millis(1200),
            ),
        }
    }
}

/// The SPECjbb workload: `warehouses` saturated transaction threads plus
/// the chosen collector.
///
/// The primary metric is throughput in transactions per second over the
/// steady-state window.
#[derive(Debug, Clone)]
pub struct SpecJbb {
    /// Number of warehouse threads (concurrency).
    pub warehouses: usize,
    /// Virtual machine flavour.
    pub jvm: JvmKind,
    /// Collector flavour.
    pub gc: GcKind,
    /// Model constants.
    pub params: SpecJbbParams,
}

impl SpecJbb {
    /// The paper's default middle-tier setup: JRockit with the parallel
    /// collector.
    pub fn new(warehouses: usize) -> Self {
        SpecJbb {
            warehouses,
            jvm: JvmKind::JRockit,
            gc: GcKind::Parallel,
            params: SpecJbbParams::default(),
        }
    }

    /// Switches the VM.
    pub fn jvm(mut self, jvm: JvmKind) -> Self {
        self.jvm = jvm;
        self
    }

    /// Switches the collector.
    pub fn gc(mut self, gc: GcKind) -> Self {
        self.gc = gc;
        self
    }
}

// ---------------------------------------------------------------------
// Shared state
// ---------------------------------------------------------------------

/// Word indices into the access-traced [`Heap`] cell: each field is an
/// independently-tracked atomic word, like a real VM's atomic heap
/// counters.
const HEAP_BYTES: u32 = 0;
const HEAP_STW: u32 = 1;
const HEAP_GC_IDLE: u32 = 2;
const HEAP_STALLS: u32 = 3;
const HEAP_COLLECTIONS: u32 = 4;
const HEAP_BACKLOG: u32 = 5;

#[derive(Debug)]
struct Heap {
    /// Parallel GC: bytes allocated since the last collection.
    /// Concurrent GC: un-reclaimed backlog.
    bytes: u64,
    /// Parallel GC: set when a collection has been requested.
    stw_requested: bool,
    /// Concurrent GC: the collector is idle, waiting for allocation.
    gc_idle: bool,
    stalls: u64,
    collections: u64,
    backlog_high_water: u64,
}

struct JbbShared {
    /// The shared heap-accounting block, modeled atomic with one word per
    /// field (`HEAP_*`): warehouses and the collector poll and update it
    /// without locks.
    heap: SimShared<Heap>,
    relief: WaitId,
    gc_wake: WaitId,
    /// Modeled atomic counter: every warehouse increments it.
    completed: SimShared<u64>,
    /// Registry of warehouse threads so survivors can reap faulted peers.
    /// Written only at setup; read-only during the run.
    warehouse_tids: RefCell<Vec<ThreadId>>,
    /// Modeled atomic flags, one word per warehouse: any survivor reaps.
    reaped: SimShared<Vec<bool>>,
    collector_tid: Cell<Option<ThreadId>>,
    /// Modeled atomic flag: polled by every warehouse.
    collector_dead: SimShared<bool>,
    /// Modeled atomic: any survivor may bump it while reaping.
    killed_seen: SimShared<u64>,
}

impl JbbShared {
    /// Removes warehouses killed by faults from the stop-the-world
    /// barriers (so surviving warehouses keep collecting) and detects a
    /// dead concurrent collector (so warehouses stop waiting for heap
    /// relief that will never come).
    fn reap_dead(&self, cx: &mut ThreadCx<'_>, stop: &SimBarrier, done: &SimBarrier) {
        let killed = cx.killed_count();
        if killed == self.killed_seen.load(cx, |k| *k) {
            return;
        }
        self.killed_seen.store(cx, |k| *k = killed);
        let tids: Vec<ThreadId> = self.warehouse_tids.borrow().clone();
        for (i, &tid) in tids.iter().enumerate() {
            if self.reaped.load_at(cx, i as u32, |r| r[i]) || !cx.join_check(tid) {
                continue;
            }
            self.reaped.store_at(cx, i as u32, |r| r[i] = true);
            stop.remove_party(cx, tid);
            done.remove_party(cx, tid);
        }
        // No relief notify is needed here: the kernel's kill broadcast has
        // already woken every blocked thread, and each woken warehouse
        // re-checks the stall condition against `collector_dead` itself.
        if let Some(ctid) = self.collector_tid.get() {
            if !self.collector_dead.load(cx, |d| *d) && cx.join_check(ctid) {
                self.collector_dead.store(cx, |d| *d = true);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Warehouse thread
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JbbPhase {
    StartTx,
    TxDone,
    StopBarrier,
    StopWait(u64),
    GcWorkDone,
    DoneBarrier,
    DoneWait(u64),
}

struct Warehouse {
    shared: Rc<JbbShared>,
    gc: GcKind,
    tx_cost: Cycles,
    tx_jitter: f64,
    alloc_per_tx: u64,
    stw_threshold: u64,
    cycle_trigger: u64,
    gc_share: Cycles,
    stop_barrier: SimBarrier,
    done_barrier: SimBarrier,
    phase: JbbPhase,
    rng: Rng,
    name: String,
}

impl Warehouse {
    fn tx_work(&mut self) -> Cycles {
        let jitter = 1.0 + self.tx_jitter * (2.0 * self.rng.next_f64() - 1.0);
        Cycles::new((self.tx_cost.get() as f64 * jitter) as u64)
    }
}

impl ThreadBody for Warehouse {
    fn run(&mut self, cx: &mut ThreadCx<'_>) -> Step {
        self.shared
            .reap_dead(cx, &self.stop_barrier, &self.done_barrier);
        loop {
            match self.phase {
                JbbPhase::StartTx => {
                    match self.gc {
                        GcKind::Parallel => {
                            let stw = self.shared.heap.load_at(cx, HEAP_STW, |h| h.stw_requested);
                            if stw {
                                self.phase = JbbPhase::StopBarrier;
                                continue;
                            }
                        }
                        GcKind::ConcurrentGenerational => {
                            let bytes = self.shared.heap.load_at(cx, HEAP_BYTES, |h| h.bytes);
                            if bytes > self.stw_threshold
                                && !self.shared.collector_dead.load(cx, |d| *d)
                            {
                                // Allocation outran the collector: stall
                                // until it catches up.
                                self.shared.heap.rmw_at(cx, HEAP_STALLS, |h| h.stalls += 1);
                                return Step::Block(self.shared.relief);
                            }
                        }
                    }
                    self.phase = JbbPhase::TxDone;
                    return Step::Compute(self.tx_work());
                }
                JbbPhase::TxDone => {
                    self.shared.completed.rmw(cx, |c| *c += 1);
                    let alloc = self.alloc_per_tx;
                    let bytes = self.shared.heap.rmw_at(cx, HEAP_BYTES, |h| {
                        h.bytes += alloc;
                        h.bytes
                    });
                    self.shared.heap.rmw_at(cx, HEAP_BACKLOG, |h| {
                        h.backlog_high_water = h.backlog_high_water.max(bytes);
                    });
                    match self.gc {
                        GcKind::Parallel => {
                            if bytes >= self.stw_threshold {
                                self.shared
                                    .heap
                                    .rmw_at(cx, HEAP_STW, |h| h.stw_requested = true);
                            }
                        }
                        GcKind::ConcurrentGenerational => {
                            if bytes >= self.cycle_trigger
                                && !self.shared.collector_dead.load(cx, |d| *d)
                                && self.shared.heap.rmw_at(cx, HEAP_GC_IDLE, |h| {
                                    std::mem::replace(&mut h.gc_idle, false)
                                })
                            {
                                cx.notify_one(self.shared.gc_wake);
                                self.phase = JbbPhase::StartTx;
                                continue;
                            }
                        }
                    }
                    self.phase = JbbPhase::StartTx;
                }
                JbbPhase::StopBarrier => match self.stop_barrier.arrive(cx) {
                    Arrival::Released => {
                        self.phase = JbbPhase::GcWorkDone;
                        return Step::Compute(self.gc_share);
                    }
                    Arrival::Wait { token, step } => {
                        self.phase = JbbPhase::StopWait(token);
                        return step;
                    }
                },
                JbbPhase::StopWait(token) => {
                    if !self.stop_barrier.passed(token) {
                        return Step::Block(self.stop_barrier.wait_id());
                    }
                    self.phase = JbbPhase::GcWorkDone;
                    return Step::Compute(self.gc_share);
                }
                JbbPhase::GcWorkDone => {
                    self.phase = JbbPhase::DoneBarrier;
                }
                JbbPhase::DoneBarrier => match self.done_barrier.arrive(cx) {
                    Arrival::Released => {
                        // Last collector out resets the heap.
                        self.shared.heap.rmw_at(cx, HEAP_BYTES, |h| h.bytes = 0);
                        self.shared
                            .heap
                            .rmw_at(cx, HEAP_STW, |h| h.stw_requested = false);
                        self.shared
                            .heap
                            .rmw_at(cx, HEAP_COLLECTIONS, |h| h.collections += 1);
                        self.phase = JbbPhase::StartTx;
                    }
                    Arrival::Wait { token, step } => {
                        self.phase = JbbPhase::DoneWait(token);
                        return step;
                    }
                },
                JbbPhase::DoneWait(token) => {
                    if !self.done_barrier.passed(token) {
                        return Step::Block(self.done_barrier.wait_id());
                    }
                    self.phase = JbbPhase::StartTx;
                }
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

// ---------------------------------------------------------------------
// Concurrent collector thread
// ---------------------------------------------------------------------

struct ConcurrentCollector {
    shared: Rc<JbbShared>,
    cost_per_byte: f64,
    chunk_bytes: u64,
    cycle_trigger: u64,
    resume_level: u64,
    pending_reclaim: u64,
}

impl ThreadBody for ConcurrentCollector {
    fn run(&mut self, cx: &mut ThreadCx<'_>) -> Step {
        // Account the chunk we just finished collecting and give relief to
        // any warehouses stalled on a full heap.
        if self.pending_reclaim > 0 {
            let reclaim = self.pending_reclaim;
            self.pending_reclaim = 0;
            let bytes = self.shared.heap.rmw_at(cx, HEAP_BYTES, |h| {
                h.bytes = h.bytes.saturating_sub(reclaim);
                h.bytes
            });
            if bytes <= self.resume_level {
                cx.notify_all(self.shared.relief);
            }
        }
        // A marking cycle only starts once a cycle's worth of garbage has
        // accumulated; between cycles the collector sleeps. Real
        // generational concurrent collectors work in such long cycles —
        // which is exactly what makes their core placement matter.
        let bytes = self.shared.heap.load_at(cx, HEAP_BYTES, |h| h.bytes);
        if bytes < self.cycle_trigger {
            self.shared
                .heap
                .rmw_at(cx, HEAP_GC_IDLE, |h| h.gc_idle = true);
            return Step::Block(self.shared.gc_wake);
        }
        self.shared
            .heap
            .rmw_at(cx, HEAP_COLLECTIONS, |h| h.collections += 1);
        let chunk = bytes.min(self.chunk_bytes);
        self.pending_reclaim = chunk;
        Step::Compute(Cycles::new((chunk as f64 * self.cost_per_byte) as u64))
    }

    fn name(&self) -> &str {
        "gc-concurrent"
    }
}

// ---------------------------------------------------------------------
// Workload implementation
// ---------------------------------------------------------------------

impl Workload for SpecJbb {
    fn name(&self) -> &str {
        "SPECjbb"
    }

    fn spec_key(&self) -> String {
        format!("{} {:?}", self.name(), self)
    }

    fn unit(&self) -> &str {
        "tx/s"
    }

    fn direction(&self) -> Direction {
        Direction::HigherIsBetter
    }

    fn run(&self, setup: &RunSetup) -> RunResult {
        assert!(self.warehouses > 0, "SPECjbb needs at least one warehouse");
        let mut kernel = Kernel::new(setup.config.machine(), setup.policy, setup.seed);
        // Workload-private stream, decorrelated from the kernel's.
        let mut seed_rng = Rng::new(setup.seed ^ 0x5bec_0000_0000_0001);

        let relief = kernel.create_wait_queue();
        let gc_wake = kernel.create_wait_queue();
        let shared = Rc::new(JbbShared {
            heap: SimShared::new(
                &mut kernel,
                "specjbb.heap",
                Heap {
                    bytes: 0,
                    stw_requested: false,
                    gc_idle: true,
                    stalls: 0,
                    collections: 0,
                    backlog_high_water: 0,
                },
            ),
            relief,
            gc_wake,
            completed: SimShared::new(&mut kernel, "specjbb.completed", 0),
            warehouse_tids: RefCell::new(Vec::new()),
            reaped: SimShared::new(&mut kernel, "specjbb.reaped", vec![false; self.warehouses]),
            collector_tid: Cell::new(None),
            collector_dead: SimShared::new(&mut kernel, "specjbb.collector_dead", false),
            killed_seen: SimShared::new(&mut kernel, "specjbb.killed_seen", 0),
        });

        let stop_barrier = SimBarrier::new(&mut kernel, self.warehouses);
        let done_barrier = SimBarrier::new(&mut kernel, self.warehouses);
        let tx_cost =
            Cycles::new((self.params.tx_cost.get() as f64 * self.jvm.tx_cost_factor()) as u64);
        let gc_total = (self.params.stw_threshold as f64 * self.params.stw_cost_per_byte) as u64;
        let gc_share = Cycles::new(gc_total / self.warehouses as u64);

        for w in 0..self.warehouses {
            let tid = kernel.spawn(
                Warehouse {
                    shared: shared.clone(),
                    gc: self.gc,
                    tx_cost,
                    tx_jitter: self.params.tx_jitter,
                    alloc_per_tx: self.params.alloc_per_tx,
                    stw_threshold: match self.gc {
                        GcKind::Parallel => self.params.stw_threshold,
                        GcKind::ConcurrentGenerational => self.params.heap_hard_limit,
                    },
                    cycle_trigger: self.params.cycle_trigger,
                    gc_share,
                    stop_barrier: stop_barrier.clone(),
                    done_barrier: done_barrier.clone(),
                    phase: JbbPhase::StartTx,
                    rng: seed_rng.fork(),
                    name: format!("warehouse{w}"),
                },
                SpawnOptions::new(),
            );
            shared.warehouse_tids.borrow_mut().push(tid);
        }
        if self.gc == GcKind::ConcurrentGenerational {
            let ctid = kernel.spawn(
                ConcurrentCollector {
                    shared: shared.clone(),
                    cost_per_byte: self.params.concurrent_cost_per_byte,
                    chunk_bytes: 4 * 1024 * 1024,
                    cycle_trigger: self.params.cycle_trigger,
                    resume_level: self.params.heap_resume,
                    pending_reclaim: 0,
                },
                SpawnOptions::new(),
            );
            shared.collector_tid.set(Some(ctid));
        }

        kernel.run_until(self.params.window.start());
        let at_start = shared.completed.peek(|c| *c);
        kernel.run_until(self.params.window.end());
        let at_end = shared.completed.peek(|c| *c);

        let (stalls, collections, backlog_hw) = shared
            .heap
            .peek(|h| (h.stalls, h.collections, h.backlog_high_water));
        RunResult::new(throughput_per_sec(
            at_end - at_start,
            self.params.window.steady,
        ))
        .with_extra("stalls", stalls as f64)
        .with_extra("collections", collections as f64)
        .with_extra("backlog_hw", backlog_hw as f64)
        .with_extra("lost_workers", kernel.stats().threads_killed as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_core::AsymConfig;
    use asym_kernel::SchedPolicy;

    fn quick(warehouses: usize, gc: GcKind, config: AsymConfig, seed: u64) -> f64 {
        let mut jbb = SpecJbb::new(warehouses).gc(gc);
        jbb.params.window =
            Window::new(SimDuration::from_millis(100), SimDuration::from_millis(400));
        jbb.run(&RunSetup::new(config, SchedPolicy::os_default(), seed))
            .value
    }

    #[test]
    fn throughput_scales_with_warehouses_up_to_cores() {
        let c = AsymConfig::new(4, 0, 1);
        let one = quick(1, GcKind::Parallel, c, 1);
        let four = quick(4, GcKind::Parallel, c, 1);
        assert!(four > 3.0 * one, "4 warehouses {four} vs 1 warehouse {one}");
    }

    #[test]
    fn fast_machine_beats_slow_machine() {
        let fast = quick(8, GcKind::Parallel, AsymConfig::new(4, 0, 1), 1);
        let slow = quick(8, GcKind::Parallel, AsymConfig::new(0, 4, 8), 1);
        assert!(fast > 6.0 * slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn parallel_gc_actually_collects() {
        let mut jbb = SpecJbb::new(4);
        jbb.params.window =
            Window::new(SimDuration::from_millis(100), SimDuration::from_millis(900));
        let setup = RunSetup::new(AsymConfig::new(4, 0, 1), SchedPolicy::os_default(), 3);
        let r = jbb.run(&setup);
        assert!(r.extras["collections"] >= 1.0, "no GC happened");
    }

    #[test]
    fn concurrent_gc_on_asym_is_noisier_than_parallel() {
        let c = AsymConfig::new(2, 2, 8);
        let spread = |gc: GcKind| {
            let runs: Vec<f64> = (0..10)
                .map(|s| {
                    let mut jbb = SpecJbb::new(10).gc(gc);
                    jbb.params.window =
                        Window::new(SimDuration::from_millis(200), SimDuration::from_millis(800));
                    jbb.run(&RunSetup::new(c, SchedPolicy::os_default(), s))
                        .value
                })
                .collect::<Vec<f64>>();
            let mean = runs.iter().sum::<f64>() / runs.len() as f64;
            let max = runs.iter().copied().fold(f64::MIN, f64::max);
            let min = runs.iter().copied().fold(f64::MAX, f64::min);
            (max - min) / mean
        };
        let par = spread(GcKind::Parallel);
        let conc = spread(GcKind::ConcurrentGenerational);
        assert!(
            conc > 2.0 * par && conc > 0.05,
            "concurrent GC should be much noisier: parallel {par:.4} vs concurrent {conc:.4}"
        );
    }

    #[test]
    fn hotspot_is_slower_than_jrockit() {
        let c = AsymConfig::new(4, 0, 1);
        let mut jr = SpecJbb::new(8);
        jr.params.window =
            Window::new(SimDuration::from_millis(100), SimDuration::from_millis(400));
        let mut hs = jr.clone().jvm(JvmKind::HotSpot);
        hs.params = jr.params.clone();
        let setup = RunSetup::new(c, SchedPolicy::os_default(), 1);
        assert!(jr.run(&setup).value > hs.run(&setup).value);
    }
}
