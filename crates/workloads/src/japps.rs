//! SPECjAppServer2002 model (§3.2): a J2EE middle tier with an
//! injection-rate driver and a response-time feedback loop.
//!
//! The paper's key observation: jAppServer is *stable under asymmetry*
//! because the workload adapts — "if the jAppServer cannot respond within
//! a fixed time, the driver is informed, and the injection rate of
//! requests is scaled down. This feedback loop is an integral part of the
//! workload." We model exactly that: a driver injects orders at a target
//! rate; the app-server thread pool services them through multi-stage
//! transactions (compute + backend-database I/O waits); the driver
//! monitors the order backlog and response times, throttling when the
//! middle tier saturates.
//!
//! Two business domains are modelled, matching the figures: **customer**
//! (NewOrder transactions) and **manufacturing** (work orders).

use crate::common::{throughput_per_sec, DurationRecorder, Window};
use asym_core::{Direction, RunResult, RunSetup, Workload};
use asym_kernel::{Kernel, SpawnOptions, Step, ThreadBody, ThreadCx, ThreadId};
use asym_sim::{Cycles, Rng, SimDuration, SimTime};
use asym_sync::{SimQueue, SimShared, TryPop};
use std::rc::Rc;

/// A transaction's business domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Customer domain (NewOrder).
    NewOrder,
    /// Manufacturing domain (work orders / production scheduling).
    Manufacturing,
}

/// One injected order flowing through the middle tier.
#[derive(Debug, Clone, Copy)]
struct Order {
    domain: Domain,
    injected_at: SimTime,
}

/// Tuning constants for the jAppServer model.
#[derive(Debug, Clone)]
pub struct JAppServerParams {
    /// Size of the app-server worker pool.
    pub pool_size: usize,
    /// Compute per NewOrder transaction (across its stages).
    pub new_order_cost: Cycles,
    /// Compute per Manufacturing transaction.
    pub manufacturing_cost: Cycles,
    /// Number of compute stages a transaction is split into (a backend
    /// I/O wait separates consecutive stages).
    pub stages: u32,
    /// Backend database round-trip latency per stage boundary.
    pub backend_latency: SimDuration,
    /// Fraction of injected orders that are NewOrder (the rest are
    /// Manufacturing).
    pub new_order_fraction: f64,
    /// The driver throttles when the response time of recent orders
    /// exceeds this bound.
    pub response_limit: SimDuration,
    /// Driver feedback interval.
    pub feedback_interval: SimDuration,
    /// Measurement window (ramp models the SPEC ramp-up).
    pub window: Window,
}

impl Default for JAppServerParams {
    fn default() -> Self {
        JAppServerParams {
            pool_size: 48,
            new_order_cost: Cycles::from_millis_at_full_speed(7.0),
            manufacturing_cost: Cycles::from_millis_at_full_speed(9.5),
            stages: 3,
            backend_latency: SimDuration::from_micros(50_000),
            new_order_fraction: 0.5,
            response_limit: SimDuration::from_millis(250),
            feedback_interval: SimDuration::from_millis(250),
            window: Window::new(SimDuration::from_secs(2), SimDuration::from_secs(12)),
        }
    }
}

/// The SPECjAppServer workload at a given injection rate.
///
/// The primary metric is total transaction throughput per second; extras
/// carry per-domain throughput and manufacturing response-time
/// statistics (`mfg_avg_ms`, `mfg_p90_ms`, `mfg_max_ms`) plus the
/// driver's achieved injection rate (`achieved_rate`).
#[derive(Debug, Clone)]
pub struct JAppServer {
    /// Specified injection rate, orders per second.
    pub injection_rate: f64,
    /// Model constants.
    pub params: JAppServerParams,
}

impl JAppServer {
    /// A jAppServer setup at the given injection rate.
    pub fn new(injection_rate: f64) -> Self {
        JAppServer {
            injection_rate,
            params: JAppServerParams::default(),
        }
    }
}

// ---------------------------------------------------------------------
// Shared run state
// ---------------------------------------------------------------------

struct JappsShared {
    queue: SimQueue<Order>,
    /// Modeled atomic counter bumped by every pool worker.
    completed_new_order: SimShared<u64>,
    /// Modeled atomic counter bumped by every pool worker.
    completed_mfg: SimShared<u64>,
    mfg_response: DurationRecorder,
    /// Recent completions, appended by workers and drained by the driver's
    /// feedback loop. Modeled atomic (a lock-free log).
    all_response: SimShared<Vec<(SimTime, SimDuration)>>,
    /// Orders injected but not yet completed. Modeled atomic.
    in_flight: SimShared<i64>,
    /// Per-worker registry of the order each pool thread is serving, so
    /// the driver can salvage orders from workers killed by faults. Plain
    /// per-worker words: each slot has one writer, and the driver reads a
    /// slot only after observing the owner's exit via `join_check`.
    serving: SimShared<Vec<Option<Order>>>,
}

// ---------------------------------------------------------------------
// Driver thread (the SPEC driver machine)
// ---------------------------------------------------------------------

struct Driver {
    shared: Rc<JappsShared>,
    spec_rate: f64,
    current_rate: f64,
    response_limit: SimDuration,
    feedback_interval: SimDuration,
    new_order_fraction: f64,
    next_feedback: SimTime,
    worker_tids: Vec<ThreadId>,
    reaped: Vec<bool>,
    killed_seen: u64,
    rng: Rng,
}

impl Driver {
    /// Requeues the in-flight orders of pool workers killed by faults.
    /// The real SPEC driver re-submits transactions that time out; here
    /// the salvage keeps `in_flight` truthful so the feedback loop is not
    /// throttled forever by phantom backlog.
    fn reap_dead(&mut self, cx: &mut ThreadCx<'_>) {
        if cx.killed_count() == self.killed_seen {
            return;
        }
        self.killed_seen = cx.killed_count();
        for w in 0..self.worker_tids.len() {
            if self.reaped[w] || !cx.join_check(self.worker_tids[w]) {
                continue;
            }
            self.reaped[w] = true;
            if let Some(order) = self.shared.serving.write_at(cx, w as u32, |s| s[w].take()) {
                self.shared.queue.push(cx, order);
            }
        }
    }
}

impl ThreadBody for Driver {
    fn run(&mut self, cx: &mut ThreadCx<'_>) -> Step {
        self.reap_dead(cx);
        // Feedback: examine recent completions; scale the injection rate
        // down when responses blow past the limit, recover toward the
        // specified rate when healthy.
        if cx.now() >= self.next_feedback {
            self.next_feedback = cx.now() + self.feedback_interval;
            let cutoff = cx.now() - self.feedback_interval;
            let limit = self.response_limit;
            let (late, total) = self.shared.all_response.rmw(cx, |recent| {
                let late = recent
                    .iter()
                    .filter(|(t, d)| *t >= cutoff && *d > limit)
                    .count();
                let total = recent.iter().filter(|(t, _)| *t >= cutoff).count();
                recent.retain(|(t, _)| *t >= cutoff);
                (late, total)
            });
            let backlog = self.shared.in_flight.load(cx, |f| *f);
            let overloaded =
                (total > 0 && late * 5 > total) || backlog as f64 > self.current_rate * 0.25;
            if overloaded {
                self.current_rate = (self.current_rate * 0.93).max(self.spec_rate * 0.05);
            } else {
                self.current_rate = (self.current_rate * 1.05).min(self.spec_rate);
            }
        }
        // Inject the next order.
        let domain = if self.rng.chance(self.new_order_fraction) {
            Domain::NewOrder
        } else {
            Domain::Manufacturing
        };
        let order = Order {
            domain,
            injected_at: cx.now(),
        };
        self.shared.in_flight.rmw(cx, |f| *f += 1);
        self.shared.queue.push(cx, order);
        let gap = self.rng.exponential(1.0 / self.current_rate);
        Step::Sleep(SimDuration::from_secs_f64(gap))
    }

    fn name(&self) -> &str {
        "driver"
    }
}

// ---------------------------------------------------------------------
// App-server pool thread
// ---------------------------------------------------------------------

struct PoolWorker {
    shared: Rc<JappsShared>,
    new_order_cost: Cycles,
    manufacturing_cost: Cycles,
    stages: u32,
    backend_latency: SimDuration,
    current: Option<Order>,
    slot: usize,
    stage: u32,
    /// The just-finished compute stage is followed by a backend round
    /// trip before the next stage starts.
    io_pending: bool,
    rng: Rng,
    name: String,
    window_start: SimTime,
}

impl ThreadBody for PoolWorker {
    fn run(&mut self, cx: &mut ThreadCx<'_>) -> Step {
        loop {
            let Some(order) = self.current else {
                match self.shared.queue.try_pop(cx) {
                    TryPop::Item(order) => {
                        self.current = Some(order);
                        let slot = self.slot;
                        self.shared
                            .serving
                            .write_at(cx, slot as u32, |s| s[slot] = Some(order));
                        self.stage = 0;
                        self.io_pending = false;
                        continue;
                    }
                    TryPop::Empty(step) => return step,
                    TryPop::Closed => return Step::Done,
                }
            };
            if self.io_pending {
                // Round trip to the backend database between stages.
                self.io_pending = false;
                return Step::Sleep(self.backend_latency);
            }
            if self.stage == self.stages {
                // Transaction complete.
                let response = cx.now().duration_since(order.injected_at);
                self.shared.in_flight.rmw(cx, |f| *f -= 1);
                let now = cx.now();
                self.shared
                    .all_response
                    .rmw(cx, |r| r.push((now, response)));
                match order.domain {
                    Domain::NewOrder => {
                        self.shared.completed_new_order.rmw(cx, |c| *c += 1);
                    }
                    Domain::Manufacturing => {
                        self.shared.completed_mfg.rmw(cx, |c| *c += 1);
                        if cx.now() >= self.window_start {
                            self.shared.mfg_response.record(response);
                        }
                    }
                }
                self.current = None;
                let slot = self.slot;
                self.shared
                    .serving
                    .write_at(cx, slot as u32, |s| s[slot] = None);
                continue;
            }
            // Execute the next compute stage; all but the final stage are
            // followed by a backend I/O wait.
            self.stage += 1;
            let base = match order.domain {
                Domain::NewOrder => self.new_order_cost,
                Domain::Manufacturing => self.manufacturing_cost,
            };
            let jitter = 0.7 + 0.6 * self.rng.next_f64();
            let per_stage = (base.get() as f64 / f64::from(self.stages) * jitter) as u64;
            self.io_pending = self.stage < self.stages;
            return Step::Compute(Cycles::new(per_stage));
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

// ---------------------------------------------------------------------
// Workload implementation
// ---------------------------------------------------------------------

impl Workload for JAppServer {
    fn name(&self) -> &str {
        "SPECjAppServer"
    }

    fn spec_key(&self) -> String {
        format!("{} {:?}", self.name(), self)
    }

    fn unit(&self) -> &str {
        "tx/s"
    }

    fn direction(&self) -> Direction {
        Direction::HigherIsBetter
    }

    fn run(&self, setup: &RunSetup) -> RunResult {
        assert!(self.injection_rate > 0.0, "injection rate must be positive");
        let mut kernel = Kernel::new(setup.config.machine(), setup.policy, setup.seed);
        let mut seed_rng = Rng::new(setup.seed ^ 0x3a44_0000_0000_0002);
        let p = &self.params;

        let shared = Rc::new(JappsShared {
            // Orders arrive over the network from the driver machine.
            queue: SimQueue::new_remote(&mut kernel),
            completed_new_order: SimShared::new(&mut kernel, "japps.completed_new_order", 0),
            completed_mfg: SimShared::new(&mut kernel, "japps.completed_mfg", 0),
            mfg_response: DurationRecorder::new(),
            all_response: SimShared::new(&mut kernel, "japps.all_response", Vec::new()),
            in_flight: SimShared::new(&mut kernel, "japps.in_flight", 0),
            serving: SimShared::new(&mut kernel, "japps.serving", vec![None; p.pool_size]),
        });

        let mut worker_tids = Vec::with_capacity(p.pool_size);
        for w in 0..p.pool_size {
            let tid = kernel.spawn(
                PoolWorker {
                    shared: shared.clone(),
                    new_order_cost: p.new_order_cost,
                    manufacturing_cost: p.manufacturing_cost,
                    stages: p.stages,
                    backend_latency: p.backend_latency,
                    current: None,
                    slot: w,
                    stage: 0,
                    io_pending: false,
                    rng: seed_rng.fork(),
                    name: format!("jas-pool{w}"),
                    window_start: p.window.start(),
                },
                SpawnOptions::new(),
            );
            worker_tids.push(tid);
        }
        // The driver models the SPEC driver machine — external to the
        // middle tier, so processor faults never kill it.
        kernel.spawn(
            Driver {
                shared: shared.clone(),
                spec_rate: self.injection_rate,
                current_rate: self.injection_rate,
                response_limit: p.response_limit,
                feedback_interval: p.feedback_interval,
                new_order_fraction: p.new_order_fraction,
                next_feedback: p.window.start(),
                reaped: vec![false; worker_tids.len()],
                worker_tids,
                killed_seen: 0,
                rng: seed_rng.fork(),
            },
            SpawnOptions::new().kill_exempt(),
        );

        kernel.run_until(p.window.start());
        let no_start = shared.completed_new_order.peek(|c| *c);
        let mfg_start = shared.completed_mfg.peek(|c| *c);
        shared.mfg_response.clear();
        kernel.run_until(p.window.end());
        let no_done = shared.completed_new_order.peek(|c| *c) - no_start;
        let mfg_done = shared.completed_mfg.peek(|c| *c) - mfg_start;

        let total = throughput_per_sec(no_done + mfg_done, p.window.steady);
        RunResult::new(total)
            .with_extra(
                "new_order_per_sec",
                throughput_per_sec(no_done, p.window.steady),
            )
            .with_extra(
                "manufacturing_per_sec",
                throughput_per_sec(mfg_done, p.window.steady),
            )
            .with_extra("mfg_avg_ms", shared.mfg_response.mean_secs() * 1e3)
            .with_extra(
                "mfg_p90_ms",
                shared.mfg_response.percentile_secs(90.0) * 1e3,
            )
            .with_extra("mfg_max_ms", shared.mfg_response.max_secs() * 1e3)
            .with_extra("lost_workers", kernel.stats().threads_killed as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_core::AsymConfig;
    use asym_kernel::SchedPolicy;

    fn quick(rate: f64, config: AsymConfig, seed: u64) -> RunResult {
        let mut j = JAppServer::new(rate);
        j.params.window = Window::new(SimDuration::from_secs(1), SimDuration::from_secs(3));
        j.run(&RunSetup::new(config, SchedPolicy::os_default(), seed))
    }

    #[test]
    fn strong_machine_sustains_specified_rate() {
        // 4f-0s: 320 orders/s of ~9.5 ms-average transactions needs ~3.0
        // compute power of the available 4.0.
        let r = quick(320.0, AsymConfig::new(4, 0, 1), 1);
        assert!(
            (r.value - 320.0).abs() / 320.0 < 0.15,
            "throughput {} should be near the injection rate",
            r.value
        );
    }

    #[test]
    fn weak_machine_feedback_throttles() {
        // 0f-4s/8 has 0.5 compute power against a ~3.0-power demand, so
        // the feedback loop must throttle far below the specified rate.
        let strong = quick(320.0, AsymConfig::new(4, 0, 1), 2).value;
        let weak = quick(320.0, AsymConfig::new(0, 4, 8), 2).value;
        assert!(
            weak < 0.85 * strong,
            "weak machine should throttle: {weak} vs {strong}"
        );
        // But it must not collapse either: feedback finds a sustainable
        // operating point.
        assert!(weak > 0.08 * strong, "feedback collapsed: {weak}");
    }

    #[test]
    fn stable_across_seeds_even_on_asymmetric_machine() {
        // The paper's headline jAppServer result: adaptation ⇒ stability.
        let runs: Vec<f64> = (0..4)
            .map(|s| quick(250.0, AsymConfig::new(2, 2, 8), s).value)
            .collect();
        let mean = runs.iter().sum::<f64>() / runs.len() as f64;
        let spread = (runs.iter().cloned().fold(f64::MIN, f64::max)
            - runs.iter().cloned().fold(f64::MAX, f64::min))
            / mean;
        assert!(
            spread < 0.10,
            "jAppServer should be stable under asymmetry: spread {spread:.3} ({runs:?})"
        );
    }

    #[test]
    fn response_percentiles_are_ordered() {
        let r = quick(250.0, AsymConfig::new(3, 1, 4), 5);
        let avg = r.extras["mfg_avg_ms"];
        let p90 = r.extras["mfg_p90_ms"];
        let max = r.extras["mfg_max_ms"];
        assert!(avg > 0.0);
        assert!(p90 >= avg * 0.8, "p90 {p90} vs avg {avg}");
        assert!(max >= p90, "max {max} vs p90 {p90}");
    }

    #[test]
    fn domains_split_roughly_by_mix() {
        let r = quick(300.0, AsymConfig::new(4, 0, 1), 7);
        let no = r.extras["new_order_per_sec"];
        let mfg = r.extras["manufacturing_per_sec"];
        let frac = no / (no + mfg);
        assert!((frac - 0.5).abs() < 0.1, "mix fraction {frac}");
    }
}
