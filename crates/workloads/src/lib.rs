//! # asym-workloads
//!
//! Models of the eight workloads studied in *"The Impact of Performance
//! Asymmetry in Emerging Multicore Architectures"* (ISCA 2005), each
//! implementing [`asym_core::Workload`] so the experiment runner can sweep
//! them across machine configurations:
//!
//! | Module | Paper workload | Key mechanism modelled |
//! |---|---|---|
//! | [`specjbb`] | SPECjbb2000 | warehouse threads + parallel / concurrent GC (collector-placement lottery) |
//! | [`japps`] | SPECjAppServer2002 | injection driver with response-time feedback loop |
//! | [`tpch`] | TPC-H on DB2 | intra-query parallelism, plan skew, DB-internal process binding |
//! | [`webserver`] | Apache & Zeus | pre-forked workers vs pinned event loops |
//! | [`specomp`] | SPEC OMP | static/guided/nowait loop profiles per benchmark |
//! | [`h264`] | H.264 encoder | macro-block wavefront with dynamic pickup |
//! | [`pmake`] | PMAKE | `make -j4` over a compile DAG with exec-balanced jobs |
//!
//! [`micro`] is not a paper workload: it is a deliberately tiny burst
//! benchmark used by the `extra_scale` spec to drive million-cell cache
//! and streaming-pipeline sweeps at sub-millisecond cost per cell.
//!
//! All time and volume scales are reduced from the paper's testbed (the
//! table lives in EXPERIMENTS.md); the phenomena under study — stability
//! across repeated runs, scaling across configurations, and which remedy
//! works — are preserved.
//!
//! # Examples
//!
//! ```
//! use asym_core::{AsymConfig, RunSetup, Workload};
//! use asym_kernel::SchedPolicy;
//! use asym_workloads::pmake::Pmake;
//!
//! let build = Pmake::new().files(60);
//! let setup = RunSetup::new(AsymConfig::new(2, 2, 8), SchedPolicy::os_default(), 7);
//! let result = build.run(&setup);
//! assert!(result.value > 0.0); // build time in seconds
//! ```

#![warn(missing_docs)]

pub mod common;
pub mod h264;
pub mod japps;
pub mod micro;
pub mod pmake;
pub mod specjbb;
pub mod specomp;
pub mod tpch;
pub mod webserver;
