//! TPC-H on a DB2-style database server (§3.3).
//!
//! The model captures the three levers the paper studies:
//!
//! * **intra-query parallelization degree** — each query splits into `P`
//!   sub-queries executed by `P` *server processes*;
//! * **optimization degree** — aggressive plans (degree 7) are fast but
//!   *skewed*: sub-queries are very unequal, so which one lands on a slow
//!   core decides the query's critical path. De-optimized plans (degree 2)
//!   are ~2.5× slower but nearly uniform, which is why the paper measured
//!   up to 10× less run-to-run variance with them;
//! * **DB-internal process binding** — DB2 binds its server processes to
//!   processors itself at server start (a per-run lottery), so the
//!   asymmetry-aware *kernel* fix cannot help: "the DB2 server controls
//!   the scheduling of query execution on server processes, which are
//!   bound by the server to various processors, thus making our kernel fix
//!   ineffective."
//!
//! The power run executes all 22 queries serially (single active user).

use asym_core::{Direction, RunResult, RunSetup, Workload};
use asym_kernel::{Kernel, SpawnOptions, Step, ThreadBody, ThreadCx, ThreadId};
use asym_sim::{CoreId, CoreMask, Cycles, Rng};
use asym_sync::{SimLatch, SimQueue, SimShared, TryPop};

/// Relative costs of the 22 TPC-H queries (q1..q22), roughly matching the
/// spread of real power-run query times. One unit ≈ 0.4 full-speed core
/// seconds under the default [`TpcHParams`].
pub const QUERY_WEIGHTS: [f64; 22] = [
    1.0, 0.3, 1.2, 0.8, 0.9, 0.5, 1.0, 1.3, 2.2, 1.0, 0.4, 0.9, 1.4, 0.6, 0.7, 0.5, 1.8, 2.5, 1.1,
    0.9, 1.9, 0.8,
];

/// Which queries a run executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySet {
    /// The full power run: all 22 queries in sequence.
    PowerRun,
    /// A single query (1-based, e.g. `Single(3)` for Q3 as in Figure 4(b)).
    Single(usize),
}

/// Tuning constants for the TPC-H model.
#[derive(Debug, Clone)]
pub struct TpcHParams {
    /// Full-speed core-seconds per unit of [`QUERY_WEIGHTS`].
    pub seconds_per_unit: f64,
    /// Per-sub-query cost jitter (uniform ±).
    pub jitter: f64,
}

impl Default for TpcHParams {
    fn default() -> Self {
        TpcHParams {
            seconds_per_unit: 0.4,
            jitter: 0.02,
        }
    }
}

/// The TPC-H workload: a power run (or single query) at a given
/// parallelization and optimization degree.
///
/// The primary metric is the runtime in seconds (lower is better).
#[derive(Debug, Clone)]
pub struct TpcH {
    /// Intra-query parallelization degree (sub-queries per query). Degree
    /// 1 disables intra-query parallelism (§3.3's bimodal experiment).
    pub parallelization: usize,
    /// Query-plan optimization degree, 0 (none) to 7 (maximum).
    pub optimization: u32,
    /// Which queries to run.
    pub queries: QuerySet,
    /// Model constants.
    pub params: TpcHParams,
}

impl TpcH {
    /// The paper's default setup: parallelization 4, optimization 7,
    /// full power run.
    pub fn power_run() -> Self {
        TpcH {
            parallelization: 4,
            optimization: 7,
            queries: QuerySet::PowerRun,
            params: TpcHParams::default(),
        }
    }

    /// A single-query run (1-based index).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= q <= 22`.
    pub fn single_query(q: usize) -> Self {
        assert!((1..=22).contains(&q), "TPC-H has queries 1..=22");
        TpcH {
            queries: QuerySet::Single(q),
            ..TpcH::power_run()
        }
    }

    /// Sets the parallelization degree.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero.
    pub fn parallelization(mut self, p: usize) -> Self {
        assert!(p > 0, "parallelization degree must be at least 1");
        self.parallelization = p;
        self
    }

    /// Sets the optimization degree (clamped to 0..=7).
    pub fn optimization(mut self, d: u32) -> Self {
        self.optimization = d.min(7);
        self
    }

    /// Total-cost multiplier of this optimization degree (1.0 at 7).
    /// De-optimized plans fall back to scan-heavy execution: degree 2 is
    /// roughly 5× more total work, which nets out ~2.5× slower after its
    /// better parallel balance (Figure 5(b)).
    pub fn cost_multiplier(&self) -> f64 {
        1.0 + 0.8 * f64::from(7 - self.optimization)
    }

    /// Plan-skew ratio: consecutive sub-query shares shrink by this
    /// factor. 1.0 = perfectly uniform (no skew).
    pub fn skew_ratio(&self) -> f64 {
        // Degree 7 → 0.45 (heavily skewed); low degrees approach uniform
        // quickly: de-optimized plans are scan-heavy and split evenly.
        1.0 - 0.55 * (f64::from(self.optimization) / 7.0).powf(1.5)
    }

    /// The sub-query shares for one query under this plan (sums to 1).
    pub fn subquery_shares(&self) -> Vec<f64> {
        let p = self.parallelization;
        let r = self.skew_ratio();
        let mut shares: Vec<f64> = (0..p).map(|i| r.powi(i as i32)).collect();
        let total: f64 = shares.iter().sum();
        for s in &mut shares {
            *s /= total;
        }
        shares
    }

    fn query_indices(&self) -> Vec<usize> {
        match self.queries {
            QuerySet::PowerRun => (0..QUERY_WEIGHTS.len()).collect(),
            QuerySet::Single(q) => vec![q - 1],
        }
    }
}

// ---------------------------------------------------------------------
// Server process and coordinator threads
// ---------------------------------------------------------------------

/// One sub-query job handed to a server process.
#[derive(Debug, Clone)]
struct SubQuery {
    work: Cycles,
    done: SimLatch,
}

struct ServerProcess {
    jobs: SimQueue<SubQuery>,
    /// Per-process registry of in-flight sub-queries: this process
    /// publishes the job it is computing so the coordinator can salvage it
    /// if a fault kills the process mid-query. Plain per-slot words: each
    /// slot has a single writer, and the coordinator reads a slot only
    /// after observing the owner's exit via `join_check`.
    serving: SimShared<Vec<Option<SubQuery>>>,
    slot: usize,
    name: String,
}

impl ThreadBody for ServerProcess {
    fn run(&mut self, cx: &mut ThreadCx<'_>) -> Step {
        let slot = self.slot;
        if let Some(job) = self.serving.write_at(cx, slot as u32, |s| s[slot].take()) {
            job.done.count_down(cx);
        }
        match self.jobs.try_pop(cx) {
            TryPop::Item(job) => {
                let work = job.work;
                self.serving
                    .write_at(cx, slot as u32, |s| s[slot] = Some(job));
                Step::Compute(work)
            }
            TryPop::Empty(step) => step,
            TryPop::Closed => Step::Done,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

struct Coordinator {
    queries: Vec<usize>,
    next: usize,
    processes: Vec<SimQueue<SubQuery>>,
    tids: Vec<ThreadId>,
    dead: Vec<bool>,
    serving: SimShared<Vec<Option<SubQuery>>>,
    killed_seen: u64,
    /// Sub-queries salvaged from dead server processes, awaiting a new home.
    lost: Vec<SubQuery>,
    /// Latch of a salvaged sub-query the coordinator just computed itself.
    fallback: Option<SimLatch>,
    shares: Vec<f64>,
    seconds_per_unit: f64,
    cost_multiplier: f64,
    jitter: f64,
    waiting: Option<SimLatch>,
    rng: Rng,
}

impl Coordinator {
    /// Detects server processes killed by faults, salvages their queued and
    /// in-flight sub-queries, and hands the orphans to surviving processes.
    /// DB2's coordinator restarts failed agents the same way: the query
    /// plan's pieces are re-dispatched, not abandoned.
    fn reap_dead(&mut self, cx: &mut ThreadCx<'_>) {
        if cx.killed_count() == self.killed_seen {
            return;
        }
        self.killed_seen = cx.killed_count();
        for i in 0..self.tids.len() {
            if self.dead[i] || !cx.join_check(self.tids[i]) {
                continue;
            }
            self.dead[i] = true;
            self.lost.extend(self.processes[i].drain(cx));
            if let Some(job) = self.serving.write_at(cx, i as u32, |s| s[i].take()) {
                self.lost.push(job);
            }
        }
        let live: Vec<usize> = (0..self.tids.len()).filter(|&i| !self.dead[i]).collect();
        if live.is_empty() {
            return; // the coordinator will run the salvage itself
        }
        for (n, job) in self.lost.drain(..).enumerate() {
            self.processes[live[n % live.len()]].push(cx, job);
        }
    }

    /// With every server process dead, the coordinator executes salvaged
    /// sub-queries inline, one compute step at a time.
    fn salvage_step(&mut self) -> Option<Step> {
        let job = self.lost.pop()?;
        self.fallback = Some(job.done);
        Some(Step::Compute(job.work))
    }
}

impl ThreadBody for Coordinator {
    fn run(&mut self, cx: &mut ThreadCx<'_>) -> Step {
        if let Some(latch) = self.fallback.take() {
            latch.count_down(cx);
        }
        self.reap_dead(cx);
        loop {
            if let Some(step) = self.salvage_step() {
                return step;
            }
            if let Some(latch) = &self.waiting {
                match latch.wait_step() {
                    Ok(()) => self.waiting = None,
                    Err(step) => return step,
                }
            }
            if self.next == self.queries.len() {
                for q in &self.processes {
                    q.close(cx);
                }
                return Step::Done;
            }
            let q = self.queries[self.next];
            self.next += 1;
            let latch = SimLatch::new(cx, self.shares.len() as u64);
            let base_secs = QUERY_WEIGHTS[q] * self.seconds_per_unit * self.cost_multiplier;
            let live: Vec<usize> = (0..self.processes.len())
                .filter(|&i| !self.dead[i])
                .collect();
            for (i, share) in self.shares.iter().enumerate() {
                let jitter = 1.0 + self.jitter * (2.0 * self.rng.next_f64() - 1.0);
                let work = Cycles::from_millis_at_full_speed(base_secs * 1e3 * share * jitter);
                let job = SubQuery {
                    work,
                    done: latch.clone(),
                };
                // Never dispatch to a dead process: its queue has no
                // consumer and the latch would wait forever. Re-bind the
                // share to a surviving process, or run it inline when
                // every server process is gone.
                if !self.dead[i] {
                    self.processes[i].push(cx, job);
                } else if let Some(&alt) = live.get(i % live.len().max(1)) {
                    self.processes[alt].push(cx, job);
                } else {
                    self.lost.push(job);
                }
            }
            self.waiting = Some(latch);
        }
    }

    fn name(&self) -> &str {
        "db2-coordinator"
    }
}

// ---------------------------------------------------------------------
// Workload implementation
// ---------------------------------------------------------------------

impl Workload for TpcH {
    fn name(&self) -> &str {
        "TPC-H"
    }

    fn spec_key(&self) -> String {
        format!("{} {:?}", self.name(), self)
    }

    fn unit(&self) -> &str {
        "seconds"
    }

    fn direction(&self) -> Direction {
        Direction::LowerIsBetter
    }

    fn run(&self, setup: &RunSetup) -> RunResult {
        let mut kernel = Kernel::new(setup.config.machine(), setup.policy, setup.seed);
        let mut seed_rng = Rng::new(setup.seed ^ 0x79c8_0000_0000_0003);
        let ncores = setup.config.num_cores() as usize;

        // DB2 binds its server processes to processors at server start —
        // one rotation draw per run. This is the per-run lottery the
        // kernel cannot see past.
        let rotation = seed_rng.index(ncores);
        let serving = SimShared::new(
            &mut kernel,
            "tpch.serving",
            vec![None; self.parallelization],
        );
        let mut process_queues = Vec::with_capacity(self.parallelization);
        let mut process_tids = Vec::with_capacity(self.parallelization);
        for i in 0..self.parallelization {
            let jobs: SimQueue<SubQuery> = SimQueue::new(&mut kernel);
            let core = CoreId((rotation + i) % ncores);
            let tid = kernel.spawn(
                ServerProcess {
                    jobs: jobs.clone(),
                    serving: serving.clone(),
                    slot: i,
                    name: format!("db2-proc{i}"),
                },
                SpawnOptions::new().affinity(CoreMask::single(core)),
            );
            process_queues.push(jobs);
            process_tids.push(tid);
        }
        kernel.spawn(
            Coordinator {
                queries: self.query_indices(),
                next: 0,
                processes: process_queues,
                dead: vec![false; process_tids.len()],
                tids: process_tids,
                serving,
                killed_seen: 0,
                lost: Vec::new(),
                fallback: None,
                shares: self.subquery_shares(),
                seconds_per_unit: self.params.seconds_per_unit,
                cost_multiplier: self.cost_multiplier(),
                jitter: self.params.jitter,
                waiting: None,
                rng: seed_rng.fork(),
            },
            SpawnOptions::new().kill_exempt(),
        );

        let outcome = kernel.run();
        assert_eq!(
            outcome,
            asym_kernel::RunOutcome::AllDone,
            "TPC-H run did not complete"
        );
        RunResult::new(kernel.now().as_secs_f64())
            .with_extra("lost_workers", kernel.stats().threads_killed as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_core::AsymConfig;
    use asym_kernel::SchedPolicy;

    fn run_secs(t: &TpcH, config: AsymConfig, policy: SchedPolicy, seed: u64) -> f64 {
        t.run(&RunSetup::new(config, policy, seed)).value
    }

    fn spread(vals: &[f64]) -> f64 {
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        (vals.iter().cloned().fold(f64::MIN, f64::max)
            - vals.iter().cloned().fold(f64::MAX, f64::min))
            / mean
    }

    #[test]
    fn shares_sum_to_one_and_skew_orders() {
        let t = TpcH::power_run();
        let shares = t.subquery_shares();
        assert_eq!(shares.len(), 4);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(shares[0] > shares[3], "optimized plans are skewed");
        let uniform = TpcH::power_run().optimization(0).subquery_shares();
        for s in uniform {
            assert!((s - 0.25).abs() < 1e-12, "degree 0 is uniform");
        }
    }

    #[test]
    fn symmetric_configs_are_stable() {
        let t = TpcH::single_query(3);
        let runs: Vec<f64> = (0..5)
            .map(|s| run_secs(&t, AsymConfig::new(4, 0, 1), SchedPolicy::os_default(), s))
            .collect();
        assert!(spread(&runs) < 0.05, "symmetric spread {:?}", runs);
    }

    #[test]
    fn asymmetric_configs_are_unstable_at_high_optimization() {
        let t = TpcH::single_query(3);
        let runs: Vec<f64> = (0..8)
            .map(|s| run_secs(&t, AsymConfig::new(2, 2, 8), SchedPolicy::os_default(), s))
            .collect();
        assert!(
            spread(&runs) > 0.3,
            "expected binding-lottery instability: {runs:?}"
        );
    }

    #[test]
    fn low_optimization_trades_speed_for_stability() {
        let hi = TpcH::single_query(3);
        let lo = TpcH::single_query(3).optimization(2);
        let config = AsymConfig::new(2, 2, 8);
        let hi_runs: Vec<f64> = (0..8)
            .map(|s| run_secs(&hi, config, SchedPolicy::os_default(), s))
            .collect();
        let lo_runs: Vec<f64> = (0..8)
            .map(|s| run_secs(&lo, config, SchedPolicy::os_default(), s))
            .collect();
        // Slower...
        let hi_mean = hi_runs.iter().sum::<f64>() / hi_runs.len() as f64;
        let lo_mean = lo_runs.iter().sum::<f64>() / lo_runs.len() as f64;
        assert!(lo_mean > hi_mean, "de-optimized plans are slower");
        // ...but much more stable.
        assert!(
            spread(&lo_runs) < 0.5 * spread(&hi_runs),
            "hi {hi_runs:?} lo {lo_runs:?}"
        );
    }

    #[test]
    fn kernel_fix_is_ineffective_for_pinned_processes() {
        let t = TpcH::single_query(3);
        let config = AsymConfig::new(2, 2, 8);
        let stock: Vec<f64> = (0..8)
            .map(|s| run_secs(&t, config, SchedPolicy::os_default(), s))
            .collect();
        let aware: Vec<f64> = (0..8)
            .map(|s| run_secs(&t, config, SchedPolicy::asymmetry_aware(), s))
            .collect();
        // The asymmetry-aware kernel cannot migrate DB-bound processes, so
        // instability persists.
        assert!(
            spread(&aware) > 0.5 * spread(&stock),
            "kernel fix should NOT help TPC-H: stock {stock:?} aware {aware:?}"
        );
    }

    #[test]
    fn no_parallelism_is_bimodal() {
        let t = TpcH::single_query(3).parallelization(1);
        let runs: Vec<f64> = (0..12)
            .map(|s| run_secs(&t, AsymConfig::new(2, 2, 8), SchedPolicy::os_default(), s))
            .collect();
        let min = runs.iter().cloned().fold(f64::MAX, f64::min);
        let max = runs.iter().cloned().fold(f64::MIN, f64::max);
        // Fast-core runs vs slow-core runs differ by the speed ratio (8x).
        assert!(
            max / min > 5.0,
            "expected bimodal fast/slow runtimes: {runs:?}"
        );
        // And each run is near one of the two modes.
        for r in &runs {
            let near_fast = (r / min - 1.0).abs() < 0.2;
            let near_slow = (r / max - 1.0).abs() < 0.2;
            assert!(near_fast || near_slow, "mid-mode runtime {r} in {runs:?}");
        }
    }

    #[test]
    fn power_run_covers_all_queries() {
        let t = TpcH::power_run();
        assert_eq!(t.query_indices().len(), 22);
        assert_eq!(TpcH::single_query(3).query_indices(), vec![2]);
    }

    #[test]
    fn higher_parallelization_increases_variance() {
        let p4 = TpcH::single_query(9);
        let p8 = TpcH::single_query(9).parallelization(8);
        let config = AsymConfig::new(2, 2, 4);
        let v4: Vec<f64> = (0..8)
            .map(|s| run_secs(&p4, config, SchedPolicy::os_default(), s))
            .collect();
        let v8: Vec<f64> = (0..8)
            .map(|s| run_secs(&p8, config, SchedPolicy::os_default(), s))
            .collect();
        assert!(
            spread(&v8) > spread(&v4) * 0.8,
            "P=8 should not be calmer: v4 {v4:?} v8 {v8:?}"
        );
    }
}
