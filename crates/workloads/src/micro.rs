//! A deliberately tiny synthetic workload for million-cell scale
//! sweeps.
//!
//! The paper's workload models cost milliseconds of host time per run —
//! fine for figure-sized sweeps, far too slow to exercise the engine's
//! streaming trace pipeline and persistent cell cache at the hundreds
//! of thousands of cells the `extra_scale` spec sweeps. [`MicroBurst`]
//! is the scale probe: a handful of compute-burst threads (with one
//! short sleep each, so dynamic-environment regimes have wakeups and
//! re-dispatches to perturb) that finish in tens of microseconds of
//! host time while still producing a real scheduler trace.

use asym_core::{Direction, RunResult, RunSetup, Workload};
use asym_kernel::{FnThread, Kernel, SpawnOptions, Step, ThreadCx};
use asym_sim::{Cycles, SimDuration};

/// The scale-sweep micro workload: `threads` workers each run `bursts`
/// fixed-size compute bursts with one mid-life sleep, and the metric is
/// aggregate burst throughput (bursts per simulated second).
#[derive(Debug, Clone)]
pub struct MicroBurst {
    threads: u32,
    bursts: u32,
}

impl MicroBurst {
    /// The default probe: 4 threads × 6 bursts.
    pub fn new() -> Self {
        MicroBurst {
            threads: 4,
            bursts: 6,
        }
    }

    /// Sets the worker-thread count.
    pub fn threads(mut self, threads: u32) -> Self {
        assert!(threads > 0, "MicroBurst needs at least one thread");
        self.threads = threads;
        self
    }

    /// Sets the bursts each worker runs.
    pub fn bursts(mut self, bursts: u32) -> Self {
        assert!(bursts > 0, "MicroBurst needs at least one burst");
        self.bursts = bursts;
        self
    }
}

impl Default for MicroBurst {
    fn default() -> Self {
        MicroBurst::new()
    }
}

impl Workload for MicroBurst {
    fn name(&self) -> &str {
        "micro-burst"
    }

    fn unit(&self) -> &str {
        "bursts/s"
    }

    fn direction(&self) -> Direction {
        Direction::HigherIsBetter
    }

    fn spec_key(&self) -> String {
        format!("{} t{} b{}", self.name(), self.threads, self.bursts)
    }

    fn run(&self, setup: &RunSetup) -> RunResult {
        let mut kernel = Kernel::new(setup.config.machine(), setup.policy, setup.seed);
        for t in 0..self.threads {
            let total = self.bursts;
            let mut done = 0u32;
            // Stagger the sleep point per thread so wakeups spread out.
            let nap_after = 1 + t % total.max(2);
            kernel.spawn(
                FnThread::new("burst", move |_cx: &mut ThreadCx<'_>| {
                    if done == total {
                        Step::Done
                    } else if done == nap_after {
                        done += 1;
                        Step::Sleep(SimDuration::from_micros(50))
                    } else {
                        done += 1;
                        Step::Compute(Cycles::from_millis_at_full_speed(0.1))
                    }
                }),
                SpawnOptions::new(),
            );
        }
        kernel.run();
        let elapsed = kernel.now().as_secs_f64();
        let total = f64::from(self.threads * self.bursts);
        RunResult::new(if elapsed > 0.0 { total / elapsed } else { 0.0 })
            .with_extra("migrations", kernel.stats().migrations as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_core::AsymConfig;
    use asym_kernel::SchedPolicy;

    #[test]
    fn runs_fast_and_deterministically() {
        let w = MicroBurst::new();
        let setup = RunSetup::new(AsymConfig::new(1, 3, 8), SchedPolicy::os_default(), 11);
        let a = w.run(&setup);
        let b = w.run(&setup);
        assert_eq!(a, b, "same seed must reproduce bit-identically");
        assert!(a.value > 0.0);
    }

    #[test]
    fn spec_key_encodes_the_knobs() {
        assert_ne!(
            MicroBurst::new().spec_key(),
            MicroBurst::new().threads(2).spec_key()
        );
    }
}
