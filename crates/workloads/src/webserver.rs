//! Apache and Zeus web-server models (§3.4), driven ApacheBench-style:
//! a fixed number of concurrent connections, a fixed request total,
//! single static file.
//!
//! **Apache** pre-forks worker processes that take connections from a
//! shared accept queue. The processes are ordinary kernel threads, so
//! placement is the kernel's business — under light load some cores idle
//! and the placement lottery makes throughput unstable; the
//! asymmetry-aware kernel fixes it (Figure 6(b)). A worker recycles
//! (exits and is re-forked) after `recycle_limit` requests; reducing that
//! limit to ~50 is the paper's fine-grained-threading experiment — many
//! short-lived processes give the scheduler constant re-placement
//! opportunities, restoring stability at a throughput cost.
//!
//! **Zeus** runs a small fixed set of single-threaded event-loop
//! processes, each multiplexing many connections. Client *sessions* are
//! assigned to a process by the accept race (modelled as a uniformly
//! random draw) and stay there — Zeus's own userspace scheduling. The
//! kernel never sees the imbalance, so the asymmetry-aware kernel cannot
//! help: sessions stranded on the slow-core process make throughput
//! unstable under both light and heavy load (Figure 7).

use asym_core::{Direction, RunResult, RunSetup, Workload};
use asym_kernel::{Kernel, SpawnOptions, Step, ThreadBody, ThreadCx, ThreadId};
use asym_sim::{Cycles, Rng, SimDuration, SimTime};
use asym_sync::{SimQueue, SimShared, TryPop};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// ApacheBench-style load level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadLevel {
    /// Concurrent connections kept in flight.
    pub concurrency: usize,
    /// Total requests to serve.
    pub total_requests: u64,
}

impl LoadLevel {
    /// The paper's light load (10 concurrent), scaled down 10× in total
    /// volume to keep simulations fast (documented in EXPERIMENTS.md).
    pub fn light() -> Self {
        LoadLevel {
            concurrency: 10,
            total_requests: 10_000,
        }
    }

    /// The paper's heavy load (60 concurrent), scaled down in volume.
    pub fn heavy() -> Self {
        LoadLevel {
            concurrency: 60,
            total_requests: 50_000,
        }
    }
}

// =====================================================================
// Apache
// =====================================================================

/// Tuning constants for the Apache model.
#[derive(Debug, Clone)]
pub struct ApacheParams {
    /// Pre-forked worker processes.
    pub pool_size: usize,
    /// Mean request-processing cost at full speed.
    pub request_cost: Cycles,
    /// Relative jitter on request cost (uniform ±).
    pub jitter: f64,
    /// Cost for the control process to fork a replacement worker.
    pub fork_cost: Cycles,
    /// Client-side network round trip between a response and the next
    /// connection on that slot (keeps light load below CPU saturation,
    /// as on the paper's gigabit testbed).
    pub client_rtt: SimDuration,
}

impl Default for ApacheParams {
    fn default() -> Self {
        ApacheParams {
            pool_size: 16,
            request_cost: Cycles::from_micros_at_full_speed(500.0),
            jitter: 0.3,
            fork_cost: Cycles::from_micros_at_full_speed(400.0),
            client_rtt: SimDuration::from_micros(1_200),
        }
    }
}

/// The Apache workload. Primary metric: requests per second.
#[derive(Debug, Clone)]
pub struct Apache {
    /// Load level.
    pub load: LoadLevel,
    /// Requests a worker serves before recycling (the paper's optimal
    /// setting is 5000; 50 is the fine-grained-threading experiment).
    pub recycle_limit: u64,
    /// Model constants.
    pub params: ApacheParams,
}

impl Apache {
    /// Apache under the given load with the optimal recycling threshold.
    pub fn new(load: LoadLevel) -> Self {
        Apache {
            load,
            recycle_limit: 5_000,
            params: ApacheParams::default(),
        }
    }

    /// Sets the per-worker recycling threshold.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn recycle_limit(mut self, limit: u64) -> Self {
        assert!(limit > 0, "recycle limit must be positive");
        self.recycle_limit = limit;
        self
    }
}

#[derive(Debug, Clone, Copy)]
struct Request {
    /// Which closed-loop client issued the connection.
    client: usize,
}

/// Per-worker connection hand-off state: each pre-forked worker has a
/// one-slot inbox; arriving connections are assigned to the
/// longest-idle worker (FIFO), exactly like prefork workers queuing in
/// `accept()`. A connection assigned to a worker stays with it even if a
/// faster core is (or becomes) idle — the paper's stranding mechanism.
struct HttpShared {
    /// Workers waiting in accept(), most recently idled last. Hand-off
    /// is LIFO (`pop_back`), like the accept-mutex convoy in real
    /// prefork servers: the most recently idled worker usually wins the
    /// race. LIFO keeps a persistent "hot set" of workers whose core
    /// placement decides the run's fortune.
    /// Modeled atomic: the accept mutex serializes this structure in a
    /// real prefork server.
    idle: SimShared<VecDeque<usize>>,
    /// One-slot connection inboxes, indexed by worker slot. Socket
    /// hand-offs — modeled atomic, one word per slot.
    inbox: SimShared<Vec<Option<Request>>>,
    /// Per-worker-slot wakeups.
    worker_wait: RefCell<Vec<asym_kernel::WaitId>>,
    /// Connections that arrived while every worker was busy. Modeled
    /// atomic like `idle` (same accept-mutex discipline).
    overflow: SimShared<VecDeque<Request>>,
    mgmt: SimQueue<()>,
    /// Per-client completion wakeups.
    client_wait: RefCell<Vec<asym_kernel::WaitId>>,
    /// Modeled atomic counter: workers increment concurrently.
    served: SimShared<u64>,
    total: u64,
    /// Modeled atomic flag: polled by every thread.
    done: SimShared<bool>,
    finished_at: RefCell<Option<SimTime>>,
    /// Per-slot registry of the request each worker is serving, so the
    /// control process can salvage requests from faulted workers. Plain
    /// per-slot words: only the owning worker touches a live slot, and
    /// the control process reads it only after joining the dead owner.
    serving: SimShared<Vec<Option<Request>>>,
    /// The kernel thread occupying each slot; cleared once reaped.
    slot_tid: RefCell<Vec<Option<ThreadId>>>,
    /// Set when a worker exits normally (recycle or shutdown), so the
    /// control process can tell a retirement from a kill. Modeled atomic
    /// flags, one word per slot.
    retired: SimShared<Vec<bool>>,
}

impl HttpShared {
    fn new_slot(&self, cx: &mut ThreadCx<'_>, kernel_wait: asym_kernel::WaitId) -> usize {
        let slot = self.inbox.peek(|i| i.len());
        self.inbox.store_at(cx, slot as u32, |i| i.push(None));
        self.worker_wait.borrow_mut().push(kernel_wait);
        self.serving.write_at(cx, slot as u32, |s| s.push(None));
        self.slot_tid.borrow_mut().push(None);
        self.retired.store_at(cx, slot as u32, |r| r.push(false));
        slot
    }

    /// Delivers a connection to the most recently idled worker (the
    /// accept race), or parks it in the overflow queue when all workers
    /// are busy.
    fn deliver(&self, cx: &mut ThreadCx<'_>, request: Request) {
        if let Some(slot) = self.idle.rmw(cx, |q| q.pop_back()) {
            self.inbox
                .store_at(cx, slot as u32, |i| i[slot] = Some(request));
            let wait = self.worker_wait.borrow()[slot];
            // Connections arrive over the network: no sync-wakeup
            // affinity toward the (remote) client.
            cx.notify_all_remote(wait);
        } else {
            self.overflow.rmw(cx, |q| q.push_back(request));
        }
    }

    /// Called by a worker when it finishes a request: counts it and
    /// notifies the owning client, which will reconnect after a network
    /// round trip.
    fn complete_one(&self, cx: &mut ThreadCx<'_>, request: Request) {
        let served = self.served.rmw(cx, |c| {
            *c += 1;
            *c
        });
        if served == self.total {
            *self.finished_at.borrow_mut() = Some(cx.now());
            self.done.store(cx, |d| *d = true);
            // Wake everyone so they can observe shutdown.
            let waits: Vec<asym_kernel::WaitId> = self
                .worker_wait
                .borrow()
                .iter()
                .chain(self.client_wait.borrow().iter())
                .copied()
                .collect();
            for w in waits {
                cx.notify_all(w);
            }
            self.mgmt.close(cx);
            return;
        }
        let wait = self.client_wait.borrow()[request.client];
        cx.notify_all(wait);
    }

    fn is_done(&self, cx: &mut ThreadCx<'_>) -> bool {
        self.done.load(cx, |d| *d)
    }
}

struct ApacheWorker {
    shared: Rc<HttpShared>,
    slot: usize,
    cost: Cycles,
    jitter: f64,
    recycle_limit: u64,
    served_here: u64,
    in_flight: Option<Request>,
    queued_idle: bool,
    rng: Rng,
    name: String,
}

impl ApacheWorker {
    /// Marks a normal exit so the control process never mistakes a
    /// recycled or shut-down worker for a fault victim.
    fn retire(&self, cx: &mut ThreadCx<'_>) -> Step {
        let slot = self.slot;
        self.shared
            .retired
            .store_at(cx, slot as u32, |r| r[slot] = true);
        Step::Done
    }
}

impl ThreadBody for ApacheWorker {
    fn run(&mut self, cx: &mut ThreadCx<'_>) -> Step {
        let slot = self.slot;
        if self.shared.is_done(cx) {
            return self.retire(cx);
        }
        if let Some(request) = self.in_flight.take() {
            self.shared
                .serving
                .write_at(cx, slot as u32, |s| s[slot] = None);
            self.shared.complete_one(cx, request);
            self.served_here += 1;
            if self.shared.is_done(cx) {
                return self.retire(cx);
            }
            if self.served_here >= self.recycle_limit {
                // Recycle: tell the control process to fork a
                // replacement, then exit.
                self.shared.mgmt.push(cx, ());
                return self.retire(cx);
            }
        }
        // Serve a waiting connection if one exists; otherwise join
        // the accept queue and block.
        let next = self
            .shared
            .inbox
            .rmw_at(cx, slot as u32, |i| i[slot].take())
            .or_else(|| self.shared.overflow.rmw(cx, |q| q.pop_front()));
        match next {
            Some(request) => {
                self.queued_idle = false;
                self.in_flight = Some(request);
                self.shared
                    .serving
                    .write_at(cx, slot as u32, |s| s[slot] = Some(request));
                let jitter = 1.0 + self.jitter * (2.0 * self.rng.next_f64() - 1.0);
                Step::Compute(Cycles::new((self.cost.get() as f64 * jitter) as u64))
            }
            None => {
                if !self.queued_idle {
                    self.queued_idle = true;
                    self.shared.idle.rmw(cx, |q| q.push_back(slot));
                }
                return Step::Block(self.shared.worker_wait.borrow()[slot]);
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

struct ApacheControl {
    shared: Rc<HttpShared>,
    params: ApacheParams,
    recycle_limit: u64,
    initial_pool: usize,
    forking: bool,
    spawned: u64,
    killed_seen: u64,
    rng: Rng,
}

impl ApacheControl {
    /// Forks one worker. Children start on the control process's core,
    /// as forked processes do, and are spread out by the load balancer —
    /// the distribution that emerges is the per-run placement lottery.
    fn fork_worker(&mut self, cx: &mut ThreadCx<'_>) {
        self.spawned += 1;
        let wait = cx.create_wait_queue();
        let slot = self.shared.new_slot(cx, wait);
        let tid = cx.spawn(
            ApacheWorker {
                shared: self.shared.clone(),
                slot,
                cost: self.params.request_cost,
                jitter: self.params.jitter,
                recycle_limit: self.recycle_limit,
                served_here: 0,
                in_flight: None,
                queued_idle: false,
                rng: self.rng.fork(),
                name: format!("httpd-{}", self.spawned),
            },
            SpawnOptions::new().on_parent_core(),
        );
        self.shared.slot_tid.borrow_mut()[slot] = Some(tid);
    }

    /// Finds workers killed by faults (finished but never retired),
    /// removes them from the accept queue, and salvages the requests
    /// sitting in their inbox or in service. Returns how many died —
    /// real prefork Apache re-forks children lost to signals the same
    /// way.
    fn reap_dead(&mut self, cx: &mut ThreadCx<'_>) -> u64 {
        if cx.killed_count() == self.killed_seen {
            return 0;
        }
        self.killed_seen = cx.killed_count();
        let nslots = self.shared.slot_tid.borrow().len();
        let mut dead = 0;
        for slot in 0..nslots {
            let Some(tid) = self.shared.slot_tid.borrow()[slot] else {
                continue;
            };
            if self.shared.retired.load_at(cx, slot as u32, |r| r[slot]) || !cx.join_check(tid) {
                continue;
            }
            self.shared.slot_tid.borrow_mut()[slot] = None;
            dead += 1;
            self.shared.idle.rmw(cx, |q| q.retain(|&s| s != slot));
            let lost_inbox = self
                .shared
                .inbox
                .rmw_at(cx, slot as u32, |i| i[slot].take());
            let lost_serving = self
                .shared
                .serving
                .write_at(cx, slot as u32, |s| s[slot].take());
            for request in [lost_inbox, lost_serving].into_iter().flatten() {
                self.shared.deliver(cx, request);
            }
        }
        dead
    }
}

impl ThreadBody for ApacheControl {
    fn run(&mut self, cx: &mut ThreadCx<'_>) -> Step {
        if self.initial_pool > 0 {
            // Pre-fork the worker pool at startup.
            let n = self.initial_pool;
            self.initial_pool = 0;
            for _ in 0..n {
                self.fork_worker(cx);
            }
            return Step::Compute(Cycles::new(self.params.fork_cost.get() * n as u64));
        }
        if self.forking {
            self.forking = false;
            self.fork_worker(cx);
        }
        let dead = self.reap_dead(cx);
        if dead > 0 && !self.shared.is_done(cx) {
            for _ in 0..dead {
                self.fork_worker(cx);
            }
            return Step::Compute(Cycles::new(self.params.fork_cost.get() * dead));
        }
        match self.shared.mgmt.try_pop(cx) {
            TryPop::Item(()) => {
                self.forking = true;
                Step::Compute(self.params.fork_cost)
            }
            TryPop::Empty(step) => step,
            TryPop::Closed => Step::Done,
        }
    }

    fn name(&self) -> &str {
        "httpd-control"
    }
}

impl Workload for Apache {
    fn name(&self) -> &str {
        "Apache"
    }

    fn spec_key(&self) -> String {
        format!("{} {:?}", self.name(), self)
    }

    fn unit(&self) -> &str {
        "req/s"
    }

    fn direction(&self) -> Direction {
        Direction::HigherIsBetter
    }

    fn run(&self, setup: &RunSetup) -> RunResult {
        let mut kernel = Kernel::new(setup.config.machine(), setup.policy, setup.seed);
        let mut seed_rng = Rng::new(setup.seed ^ 0xa9ac_0000_0000_0004);
        let shared = Rc::new(HttpShared {
            idle: SimShared::new(&mut kernel, "apache.idle", VecDeque::new()),
            inbox: SimShared::new(&mut kernel, "apache.inbox", Vec::new()),
            worker_wait: RefCell::new(Vec::new()),
            overflow: SimShared::new(&mut kernel, "apache.overflow", VecDeque::new()),
            mgmt: SimQueue::new(&mut kernel),
            client_wait: RefCell::new(Vec::new()),
            served: SimShared::new(&mut kernel, "apache.served", 0),
            total: self.load.total_requests,
            done: SimShared::new(&mut kernel, "apache.done", false),
            finished_at: RefCell::new(None),
            serving: SimShared::new(&mut kernel, "apache.serving", Vec::new()),
            slot_tid: RefCell::new(Vec::new()),
            retired: SimShared::new(&mut kernel, "apache.retired", Vec::new()),
        });
        // The control process is Apache's parent: it supervises the pool
        // and re-forks children lost to faults, so it is never a victim.
        kernel.spawn(
            ApacheControl {
                shared: shared.clone(),
                params: self.params.clone(),
                recycle_limit: self.recycle_limit,
                initial_pool: self.params.pool_size,
                forking: false,
                spawned: 0,
                killed_seen: 0,
                rng: seed_rng.fork(),
            },
            SpawnOptions::new().kill_exempt(),
        );
        // One closed-loop client thread per concurrency slot. Clients
        // consume no CPU (they sleep and block), standing in for the
        // ApacheBench driver machine. They start 1 ms in so the pool has
        // pre-forked.
        for c in 0..self.load.concurrency {
            let wait = kernel.create_wait_queue();
            shared.client_wait.borrow_mut().push(wait);
            let shared = shared.clone();
            let rtt = self.params.client_rtt;
            let mut rng = seed_rng.fork();
            let mut phase = 0u32;
            kernel.spawn(
                asym_kernel::FnThread::new(format!("client{c}"), move |cx: &mut ThreadCx<'_>| {
                    if shared.is_done(cx) {
                        return Step::Done;
                    }
                    phase += 1;
                    match phase % 3 {
                        1 => {
                            // Connection setup / think gap.
                            let jitter = 0.5 + rng.next_f64();
                            Step::Sleep(SimDuration::from_nanos(
                                (rtt.as_nanos() as f64 * jitter) as u64,
                            ))
                        }
                        2 => {
                            shared.deliver(cx, Request { client: c });
                            Step::Block(wait)
                        }
                        _ => {
                            // Woken: response received; loop to reconnect.
                            phase = 0;
                            Step::Sleep(SimDuration::ZERO)
                        }
                    }
                }),
                // Clients model the ApacheBench driver machine — outside
                // the server, so server-side faults never kill them.
                SpawnOptions::new().kill_exempt(),
            );
        }
        kernel.run();
        let finished = shared
            .finished_at
            .borrow()
            .expect("benchmark served all requests");
        let elapsed = finished.as_secs_f64();
        RunResult::new(self.load.total_requests as f64 / elapsed)
            .with_extra("elapsed_s", elapsed)
            .with_extra("lost_workers", kernel.stats().threads_killed as f64)
    }
}

// =====================================================================
// Zeus
// =====================================================================

/// Tuning constants for the Zeus model.
#[derive(Debug, Clone)]
pub struct ZeusParams {
    /// Number of single-threaded event-loop processes ("a small, fixed
    /// number"), each bound to a processor.
    pub event_processes: usize,
    /// Mean request-processing cost (Zeus serves a static file several
    /// times faster than Apache in the paper's measurements).
    pub request_cost: Cycles,
    /// Relative jitter on request cost (uniform ±).
    pub jitter: f64,
    /// Mean requests per client session (pipelined keep-alive bursts; a
    /// session stays on the process that accepted it).
    pub session_length: u64,
    /// Accept-race weight of an idle event process relative to a busy
    /// one. Idle processes sit in the event loop and usually win the
    /// race — but not always, and a busy slow-core process that wins
    /// strands the whole session.
    pub idle_accept_weight: f64,
}

impl Default for ZeusParams {
    fn default() -> Self {
        ZeusParams {
            event_processes: 4,
            request_cost: Cycles::from_micros_at_full_speed(200.0),
            jitter: 0.2,
            session_length: 60,
            idle_accept_weight: 3.0,
        }
    }
}

/// The Zeus workload. Primary metric: requests per second.
///
/// Zeus multiplexes client *sessions* (pipelined keep-alive request
/// bursts) over a small fixed set of event-loop processes, each bound to
/// a processor. A session is assigned to whichever process wins the
/// accept race — usually an idle one, but busy processes poll the listen
/// socket too. That userspace decision is invisible to the kernel, and a
/// session that lands on a slow-core process is stranded there for its
/// whole lifetime. On symmetric machines mis-assignments are harmless
/// (every core serves at the same rate); on asymmetric machines they
/// make throughput unstable under both light and heavy load (Figure 7),
/// and no kernel scheduling policy can reach the decision (§3.4.1).
#[derive(Debug, Clone)]
pub struct Zeus {
    /// Load level (`concurrency` = concurrent client sessions).
    pub load: LoadLevel,
    /// Model constants.
    pub params: ZeusParams,
}

impl Zeus {
    /// Zeus under the given load.
    pub fn new(load: LoadLevel) -> Self {
        Zeus {
            load,
            params: ZeusParams::default(),
        }
    }
}

/// A client session: a burst of pipelined requests bound to one process.
#[derive(Debug, Clone, Copy)]
struct Session {
    remaining: u64,
}

struct ZeusShared {
    /// Per-event-process session queues: Zeus's internal scheduling.
    queues: Vec<SimQueue<Session>>,
    /// Whether each process currently has a session in service. Modeled
    /// atomic flags, one word per process: the accept race polls them.
    busy: SimShared<Vec<bool>>,
    /// Modeled atomic counter: every process increments it.
    served: SimShared<u64>,
    total: u64,
    /// Modeled atomic flag: polled by every process.
    done: SimShared<bool>,
    finished_at: RefCell<Option<SimTime>>,
    session_length: u64,
    idle_accept_weight: f64,
    /// The accept-race draw, serialized by the listen socket's kernel
    /// lock — modeled as an atomic read-modify-write.
    rng: SimShared<Rng>,
    /// Event-process threads by index; cleared once reaped.
    tids: RefCell<Vec<Option<ThreadId>>>,
    /// Processes confirmed killed by faults — weight zero in the accept
    /// race, since a dead process no longer polls the listen socket.
    /// Modeled atomic flags, one word per process.
    dead: SimShared<Vec<bool>>,
    /// The session each process is currently serving (with its live
    /// remaining-request count), for salvage by surviving peers. Plain
    /// per-process words: only the owner touches a live entry, and a
    /// reaper reads it only after joining the dead owner.
    serving: SimShared<Vec<Option<Session>>>,
    /// Modeled atomic: any survivor may bump it while reaping.
    killed_seen: SimShared<u64>,
}

impl ZeusShared {
    fn is_done(&self, cx: &mut ThreadCx<'_>) -> bool {
        self.done.load(cx, |d| *d)
    }

    /// Runs the accept race for a new session: idle processes usually
    /// win, busy ones sometimes do. Blind to core speed — but dead
    /// processes no longer poll the listen socket at all.
    fn assign_new_session(&self, cx: &mut ThreadCx<'_>) {
        let mut weights = Vec::with_capacity(self.queues.len());
        for (i, q) in self.queues.iter().enumerate() {
            let is_dead = self.dead.load_at(cx, i as u32, |d| d[i]);
            let is_busy = self.busy.load_at(cx, i as u32, |b| b[i]);
            weights.push(if is_dead {
                0.0
            } else if !is_busy && q.is_empty() {
                self.idle_accept_weight
            } else {
                1.0
            });
        }
        let session_length = self.session_length;
        let (idx, remaining) = self.rng.rmw(cx, |rng| {
            let idx = rng.weighted_index(&weights);
            let jitter = 0.5 + rng.next_f64();
            (idx, ((session_length as f64 * jitter) as u64).max(1))
        });
        self.queues[idx].push(cx, Session { remaining });
    }

    fn finish_all(&self, cx: &mut ThreadCx<'_>) {
        *self.finished_at.borrow_mut() = Some(cx.now());
        self.done.store(cx, |d| *d = true);
        for q in &self.queues {
            q.close(cx);
        }
    }
}

struct EventProcess {
    shared: Rc<ZeusShared>,
    index: usize,
    cost: Cycles,
    jitter: f64,
    current: Option<Session>,
    in_flight: bool,
    rng: Rng,
    name: String,
}

impl EventProcess {
    /// Adopts the sessions of peers killed by faults: their queued
    /// sessions and the one in service migrate to this process's queue.
    /// Zeus has no supervisor, so the surviving event loops notice dead
    /// peers themselves (in reality, via the shared listen socket).
    fn reap_dead(&mut self, cx: &mut ThreadCx<'_>) {
        let killed = cx.killed_count();
        if self.shared.is_done(cx) || killed == self.shared.killed_seen.load(cx, |k| *k) {
            return;
        }
        self.shared.killed_seen.store(cx, |k| *k = killed);
        for i in 0..self.shared.queues.len() {
            if i == self.index {
                continue;
            }
            let Some(tid) = self.shared.tids.borrow()[i] else {
                continue;
            };
            if !cx.join_check(tid) {
                continue;
            }
            self.shared.tids.borrow_mut()[i] = None;
            self.shared.dead.store_at(cx, i as u32, |d| d[i] = true);
            let mut salvaged = self.shared.queues[i].drain(cx);
            if let Some(session) = self.shared.serving.write_at(cx, i as u32, |s| s[i].take()) {
                salvaged.push(session);
            }
            for session in salvaged {
                self.shared.queues[self.index].push(cx, session);
            }
        }
    }
}

impl ThreadBody for EventProcess {
    fn run(&mut self, cx: &mut ThreadCx<'_>) -> Step {
        self.reap_dead(cx);
        let index = self.index;
        if self.in_flight {
            self.in_flight = false;
            let served = self.shared.served.rmw(cx, |c| {
                *c += 1;
                *c
            });
            if served >= self.shared.total {
                if !self.shared.is_done(cx) {
                    self.shared.finish_all(cx);
                }
                return Step::Done;
            }
            let session = self.current.as_mut().expect("request had a session");
            session.remaining -= 1;
            if session.remaining == 0 {
                self.current = None;
                self.shared
                    .serving
                    .write_at(cx, index as u32, |s| s[index] = None);
                self.shared
                    .busy
                    .store_at(cx, index as u32, |b| b[index] = false);
                // The finished client reconnects at once; the accept
                // race decides who gets it.
                self.shared.assign_new_session(cx);
            } else {
                let current = self.current;
                self.shared
                    .serving
                    .write_at(cx, index as u32, |s| s[index] = current);
            }
        }
        if self.shared.is_done(cx) {
            return Step::Done;
        }
        if self.current.is_none() {
            match self.shared.queues[self.index].try_pop(cx) {
                TryPop::Item(s) => {
                    self.current = Some(s);
                    self.shared
                        .serving
                        .write_at(cx, index as u32, |v| v[index] = Some(s));
                    self.shared
                        .busy
                        .store_at(cx, index as u32, |b| b[index] = true);
                }
                TryPop::Empty(step) => {
                    self.shared
                        .busy
                        .store_at(cx, index as u32, |b| b[index] = false);
                    return step;
                }
                TryPop::Closed => return Step::Done,
            }
        }
        self.in_flight = true;
        let jitter = 1.0 + self.jitter * (2.0 * self.rng.next_f64() - 1.0);
        Step::Compute(Cycles::new((self.cost.get() as f64 * jitter) as u64))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl Workload for Zeus {
    fn name(&self) -> &str {
        "Zeus"
    }

    fn spec_key(&self) -> String {
        format!("{} {:?}", self.name(), self)
    }

    fn unit(&self) -> &str {
        "req/s"
    }

    fn direction(&self) -> Direction {
        Direction::HigherIsBetter
    }

    fn run(&self, setup: &RunSetup) -> RunResult {
        let mut kernel = Kernel::new(setup.config.machine(), setup.policy, setup.seed);
        let mut seed_rng = Rng::new(setup.seed ^ 0x2e05_0000_0000_0005);
        let queues: Vec<SimQueue<Session>> = (0..self.params.event_processes)
            .map(|_| SimQueue::new(&mut kernel))
            .collect();
        let nprocs = self.params.event_processes;
        let shared = Rc::new(ZeusShared {
            queues,
            busy: SimShared::new(&mut kernel, "zeus.busy", vec![false; nprocs]),
            served: SimShared::new(&mut kernel, "zeus.served", 0),
            total: self.load.total_requests,
            done: SimShared::new(&mut kernel, "zeus.done", false),
            finished_at: RefCell::new(None),
            session_length: self.params.session_length,
            idle_accept_weight: self.params.idle_accept_weight,
            rng: SimShared::new(&mut kernel, "zeus.accept_rng", seed_rng.fork()),
            tids: RefCell::new(Vec::new()),
            dead: SimShared::new(&mut kernel, "zeus.dead", vec![false; nprocs]),
            serving: SimShared::new(&mut kernel, "zeus.serving", vec![None; nprocs]),
            killed_seen: SimShared::new(&mut kernel, "zeus.killed_seen", 0),
        });
        let ncores = setup.config.num_cores() as usize;
        for i in 0..nprocs {
            // Zeus binds each event loop to a processor — its own
            // scheduling, invisible to (and unfixable by) the kernel.
            let core = asym_sim::CoreId(i % ncores);
            let tid = kernel.spawn(
                EventProcess {
                    shared: shared.clone(),
                    index: i,
                    cost: self.params.request_cost,
                    jitter: self.params.jitter,
                    current: None,
                    in_flight: false,
                    rng: seed_rng.fork(),
                    name: format!("zeus{i}"),
                },
                SpawnOptions::new().affinity(asym_sim::CoreMask::single(core)),
            );
            shared.tids.borrow_mut().push(Some(tid));
        }
        // Seed the concurrent sessions.
        {
            let shared = shared.clone();
            let sessions = self.load.concurrency;
            let mut primed = false;
            kernel.spawn(
                asym_kernel::FnThread::new("zb-driver", move |cx: &mut ThreadCx<'_>| {
                    if primed {
                        return Step::Done;
                    }
                    primed = true;
                    for _ in 0..sessions {
                        shared.assign_new_session(cx);
                    }
                    Step::Done
                }),
                // The benchmark driver runs on a separate machine.
                SpawnOptions::new().kill_exempt(),
            );
        }
        kernel.run();
        // If faults killed every event process the benchmark cannot
        // finish; report throughput up to the point service stopped
        // instead of panicking.
        let (elapsed, served) = match *shared.finished_at.borrow() {
            Some(t) => (t.as_secs_f64(), self.load.total_requests),
            None => (kernel.now().as_secs_f64(), shared.served.peek(|c| *c)),
        };
        RunResult::new(served as f64 / elapsed)
            .with_extra("elapsed_s", elapsed)
            .with_extra("lost_workers", kernel.stats().threads_killed as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_core::AsymConfig;
    use asym_kernel::SchedPolicy;

    fn small(load: LoadLevel, total: u64) -> LoadLevel {
        LoadLevel {
            concurrency: load.concurrency,
            total_requests: total,
        }
    }

    fn spread(vals: &[f64]) -> f64 {
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        (vals.iter().cloned().fold(f64::MIN, f64::max)
            - vals.iter().cloned().fold(f64::MAX, f64::min))
            / mean
    }

    fn apache_runs(
        load: LoadLevel,
        recycle: u64,
        config: AsymConfig,
        policy: SchedPolicy,
        n: u64,
    ) -> Vec<f64> {
        (0..n)
            .map(|s| {
                Apache::new(load)
                    .recycle_limit(recycle)
                    .run(&RunSetup::new(config, policy, s))
                    .value
            })
            .collect()
    }

    fn zeus_runs(load: LoadLevel, config: AsymConfig, policy: SchedPolicy, n: u64) -> Vec<f64> {
        (0..n)
            .map(|s| Zeus::new(load).run(&RunSetup::new(config, policy, s)).value)
            .collect()
    }

    #[test]
    fn apache_symmetric_is_stable_and_scales() {
        let light = small(LoadLevel::light(), 3_000);
        let fast = apache_runs(
            light,
            5_000,
            AsymConfig::new(4, 0, 1),
            SchedPolicy::os_default(),
            3,
        );
        let slow = apache_runs(
            light,
            5_000,
            AsymConfig::new(0, 4, 8),
            SchedPolicy::os_default(),
            3,
        );
        // 4f-0s carries a mild wobble at light load (worker-pile modes on
        // equal-speed cores); it stays far below the asymmetric spreads.
        assert!(spread(&fast) < 0.20, "fast {fast:?}");
        // The all-slow machine saturates; throughput is capacity-bound and
        // repeatable within a wider (but still modest) band at this small
        // request total.
        assert!(spread(&slow) < 0.25, "slow {slow:?}");
        let f = fast.iter().sum::<f64>() / 3.0;
        let s = slow.iter().sum::<f64>() / 3.0;
        assert!(
            f > 2.0 * s,
            "throughput should scale with power: {f} vs {s}"
        );
    }

    #[test]
    fn apache_light_load_unstable_on_asymmetric() {
        let light = small(LoadLevel::light(), 3_000);
        let runs = apache_runs(
            light,
            5_000,
            AsymConfig::new(3, 1, 8),
            SchedPolicy::os_default(),
            6,
        );
        assert!(
            spread(&runs) > 0.08,
            "light load should be unstable: {runs:?}"
        );
    }

    #[test]
    fn apache_heavy_load_is_stable() {
        let heavy = small(LoadLevel::heavy(), 8_000);
        let runs = apache_runs(
            heavy,
            5_000,
            AsymConfig::new(3, 1, 8),
            SchedPolicy::os_default(),
            4,
        );
        assert!(
            spread(&runs) < 0.08,
            "heavy load should be stable: {runs:?}"
        );
    }

    #[test]
    fn asymmetry_aware_kernel_stabilizes_apache() {
        let light = small(LoadLevel::light(), 3_000);
        let stock = apache_runs(
            light,
            5_000,
            AsymConfig::new(3, 1, 8),
            SchedPolicy::os_default(),
            6,
        );
        let aware = apache_runs(
            light,
            5_000,
            AsymConfig::new(3, 1, 8),
            SchedPolicy::asymmetry_aware(),
            6,
        );
        assert!(
            spread(&aware) < 0.5 * spread(&stock),
            "kernel fix should stabilize Apache: stock {stock:?} aware {aware:?}"
        );
        // And the aware kernel is also faster on average.
        let sm = stock.iter().sum::<f64>() / stock.len() as f64;
        let am = aware.iter().sum::<f64>() / aware.len() as f64;
        assert!(am > sm, "aware {am} should beat stock {sm}");
    }

    #[test]
    fn fine_grained_recycling_stabilizes_but_slows() {
        let light = small(LoadLevel::light(), 3_000);
        let config = AsymConfig::new(3, 1, 8);
        let coarse = apache_runs(light, 5_000, config, SchedPolicy::os_default(), 6);
        let fine = apache_runs(light, 50, config, SchedPolicy::os_default(), 6);
        let coarse_best = coarse.iter().cloned().fold(f64::MIN, f64::max);
        let fine_best = fine.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            fine_best < coarse_best,
            "recycling overhead should cost peak throughput: fine {fine_best} coarse {coarse_best}"
        );
        assert!(
            spread(&fine) < spread(&coarse),
            "fine-grained should be more stable: fine {fine:?} coarse {coarse:?}"
        );
    }

    #[test]
    fn zeus_outperforms_apache() {
        let light = small(LoadLevel::light(), 3_000);
        let a = apache_runs(
            light,
            5_000,
            AsymConfig::new(4, 0, 1),
            SchedPolicy::os_default(),
            2,
        );
        let z = zeus_runs(
            small(LoadLevel::light(), 10_000),
            AsymConfig::new(4, 0, 1),
            SchedPolicy::os_default(),
            2,
        );
        let am = a.iter().sum::<f64>() / a.len() as f64;
        let zm = z.iter().sum::<f64>() / z.len() as f64;
        assert!(zm > 2.0 * am, "Zeus should be much faster: {zm} vs {am}");
    }

    #[test]
    fn zeus_unstable_under_both_loads_on_asymmetric() {
        let config = AsymConfig::new(3, 1, 8);
        let light = zeus_runs(
            small(LoadLevel::light(), 10_000),
            config,
            SchedPolicy::os_default(),
            6,
        );
        let heavy = zeus_runs(
            small(LoadLevel::heavy(), 25_000),
            config,
            SchedPolicy::os_default(),
            6,
        );
        assert!(
            spread(&light) > 0.08,
            "Zeus light should be unstable: {light:?}"
        );
        assert!(
            spread(&heavy) > 0.05,
            "Zeus heavy should be unstable: {heavy:?}"
        );
    }

    #[test]
    fn kernel_fix_does_not_stabilize_zeus() {
        let config = AsymConfig::new(2, 2, 8);
        let load = small(LoadLevel::light(), 10_000);
        let stock = zeus_runs(load, config, SchedPolicy::os_default(), 6);
        let aware = zeus_runs(load, config, SchedPolicy::asymmetry_aware(), 6);
        // Pinned event processes are invisible to the kernel: identical
        // results under both policies.
        assert_eq!(stock, aware, "kernel policy must not affect pinned Zeus");
        assert!(spread(&aware) > 0.08, "instability persists: {aware:?}");
    }

    #[test]
    fn zeus_symmetric_is_stable() {
        for config in [AsymConfig::new(4, 0, 1), AsymConfig::new(0, 4, 8)] {
            let runs = zeus_runs(
                small(LoadLevel::light(), 10_000),
                config,
                SchedPolicy::os_default(),
                4,
            );
            assert!(
                spread(&runs) < 0.06,
                "symmetric Zeus should be stable on {config}: {runs:?}"
            );
        }
    }
}
