//! PMAKE model (§3.7): `make -j4` over a Linux-kernel-sized build.
//!
//! The build is a DAG: a serial configuration/parse head, ~790
//! independent compile jobs (the paper's ~7900 C files, scaled 10×
//! down), and a serial link tail. `make -j4` keeps four compile jobs
//! outstanding; every job is a freshly forked process, so the scheduler
//! constantly gets new, short-lived work to place — the same
//! self-balancing effect as fine-grained Apache recycling. PMAKE is
//! therefore stable and scalable, and one fast core pays off twice: it
//! speeds the serial head/tail and soaks up compile jobs on demand.

use asym_core::{Direction, RunResult, RunSetup, Workload};
use asym_kernel::{Kernel, SpawnOptions, Step, ThreadBody, ThreadCx, ThreadId, WaitId};
use asym_sim::{Cycles, Rng};
use asym_sync::SimShared;
use std::rc::Rc;

/// Tuning constants for the PMAKE model.
#[derive(Debug, Clone)]
pub struct PmakeParams {
    /// Number of compile jobs (the paper's kernel tree has ~7900 files;
    /// we scale 10× down).
    pub files: u32,
    /// `-j` parallelism.
    pub jobs: u32,
    /// Median compile cost per file at full speed.
    pub compile_cost: Cycles,
    /// Log-normal sigma of per-file compile costs.
    pub cost_sigma: f64,
    /// Serial Makefile parse / dependency scan at the start.
    pub parse_cost: Cycles,
    /// Serial link steps at the end.
    pub link_steps: u32,
    /// Cost of each link step.
    pub link_cost: Cycles,
    /// Cost for make to fork one compiler process.
    pub fork_cost: Cycles,
    /// Workload seed fixing the per-file costs (the *tree* doesn't change
    /// between runs; only scheduling noise does).
    pub tree_seed: u64,
}

impl Default for PmakeParams {
    fn default() -> Self {
        PmakeParams {
            files: 790,
            jobs: 4,
            compile_cost: Cycles::from_millis_at_full_speed(20.0),
            cost_sigma: 0.55,
            parse_cost: Cycles::from_millis_at_full_speed(100.0),
            link_steps: 3,
            link_cost: Cycles::from_millis_at_full_speed(50.0),
            fork_cost: Cycles::from_micros_at_full_speed(300.0),
            tree_seed: 0xbeef,
        }
    }
}

/// The PMAKE workload. Primary metric: build time in seconds.
#[derive(Debug, Clone, Default)]
pub struct Pmake {
    /// Model constants.
    pub params: PmakeParams,
}

impl Pmake {
    /// A `make -j4` build of the scaled kernel tree.
    pub fn new() -> Self {
        Pmake::default()
    }

    /// Scales the file count (for fast tests).
    pub fn files(mut self, files: u32) -> Self {
        self.params.files = files;
        self
    }
}

struct MakeShared {
    /// Jobs retired so far; an access-traced atomic because make polls it
    /// while compilers are still incrementing.
    finished_jobs: SimShared<u64>,
    make_wake: WaitId,
    /// Per-file success flags, so make can tell a compiler that finished
    /// from one that was killed mid-compile (and re-fork the latter).
    /// Plain per-file words: make only reads a file's flag after
    /// observing the compiler's exit, which orders the accesses.
    job_done: SimShared<Vec<bool>>,
}

/// One compiler process: compute, report, exit.
struct CompileJob {
    shared: Rc<MakeShared>,
    file: usize,
    work: Cycles,
    compiled: bool,
    name: String,
}

impl ThreadBody for CompileJob {
    fn run(&mut self, cx: &mut ThreadCx<'_>) -> Step {
        if !self.compiled {
            self.compiled = true;
            return Step::Compute(self.work);
        }
        let file = self.file;
        self.shared
            .job_done
            .write_at(cx, file as u32, |d| d[file] = true);
        self.shared.finished_jobs.rmw(cx, |c| *c += 1);
        cx.notify_all(self.shared.make_wake);
        Step::Done
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MakePhase {
    Parse,
    Spawn,
    WaitJobs,
    Link(u32),
    LinkWork(u32),
    Done,
}

/// The make process: parses, keeps `-j` jobs outstanding, then links.
/// As the supervisor it is exempt from injected kills and re-forks any
/// compiler process a fault terminates (a real make would fail the build;
/// re-running the rule is the kill-tolerant completion mode).
struct MakeProcess {
    shared: Rc<MakeShared>,
    costs: Vec<Cycles>,
    jobs: u32,
    /// Next never-attempted file index.
    next_file: usize,
    /// Files whose compiler was killed, awaiting a re-fork.
    retry: Vec<usize>,
    /// In-flight compilers: (file, tid), purged as they exit.
    active: Vec<(usize, ThreadId)>,
    fork_cost: Cycles,
    parse_cost: Cycles,
    link_steps: u32,
    link_cost: Cycles,
    phase: MakePhase,
    parsed: bool,
}

impl MakeProcess {
    /// Drops exited compilers from the in-flight list; ones that exited
    /// without marking their file done were killed and get re-queued.
    fn reap_jobs(&mut self, cx: &mut ThreadCx<'_>) {
        let mut i = 0;
        while i < self.active.len() {
            let (file, tid) = self.active[i];
            if !cx.join_check(tid) {
                i += 1;
                continue;
            }
            self.active.remove(i);
            if !self.shared.job_done.read_at(cx, file as u32, |d| d[file]) {
                self.retry.push(file);
            }
        }
    }

    fn files_remaining(&self) -> bool {
        self.next_file < self.costs.len() || !self.retry.is_empty()
    }
}

impl ThreadBody for MakeProcess {
    fn run(&mut self, cx: &mut ThreadCx<'_>) -> Step {
        self.reap_jobs(cx);
        loop {
            match self.phase {
                MakePhase::Parse => {
                    if !self.parsed {
                        self.parsed = true;
                        return Step::Compute(self.parse_cost);
                    }
                    self.phase = MakePhase::Spawn;
                }
                MakePhase::Spawn => {
                    if !self.files_remaining() || self.active.len() >= self.jobs as usize {
                        self.phase = MakePhase::WaitJobs;
                        continue;
                    }
                    // Fork+exec the next compiler (retries first). Exec-time
                    // balancing (2.6's sched_exec) places the fresh process
                    // on a least-loaded core — speed-agnostically.
                    let file = self.retry.pop().unwrap_or_else(|| {
                        let f = self.next_file;
                        self.next_file += 1;
                        f
                    });
                    let work = self.costs[file];
                    let tid = cx.spawn(
                        CompileJob {
                            shared: self.shared.clone(),
                            file,
                            work,
                            compiled: false,
                            name: format!("cc-{file}"),
                        },
                        SpawnOptions::new(),
                    );
                    self.active.push((file, tid));
                    return Step::Compute(self.fork_cost);
                }
                MakePhase::WaitJobs => {
                    if self.shared.finished_jobs.load(cx, |c| *c) == self.costs.len() as u64 {
                        self.phase = MakePhase::Link(0);
                        continue;
                    }
                    if self.files_remaining() && self.active.len() < self.jobs as usize {
                        self.phase = MakePhase::Spawn;
                        continue;
                    }
                    return Step::Block(self.shared.make_wake);
                }
                MakePhase::Link(step) => {
                    if step == self.link_steps {
                        self.phase = MakePhase::Done;
                        continue;
                    }
                    self.phase = MakePhase::LinkWork(step);
                    return Step::Compute(self.link_cost);
                }
                MakePhase::LinkWork(step) => {
                    self.phase = MakePhase::Link(step + 1);
                }
                MakePhase::Done => return Step::Done,
            }
        }
    }

    fn name(&self) -> &str {
        "make"
    }
}

impl Workload for Pmake {
    fn name(&self) -> &str {
        "PMAKE"
    }

    fn spec_key(&self) -> String {
        format!("{} {:?}", self.name(), self)
    }

    fn unit(&self) -> &str {
        "seconds"
    }

    fn direction(&self) -> Direction {
        Direction::LowerIsBetter
    }

    fn run(&self, setup: &RunSetup) -> RunResult {
        let p = &self.params;
        assert!(p.files > 0 && p.jobs > 0, "PMAKE needs files and jobs");
        let mut kernel = Kernel::new(setup.config.machine(), setup.policy, setup.seed);

        // Per-file costs come from the *tree* seed: identical across runs,
        // exactly like a real source tree.
        let mut tree_rng = Rng::new(p.tree_seed);
        let costs: Vec<Cycles> = (0..p.files)
            .map(|_| {
                let factor = tree_rng.log_normal(0.0, p.cost_sigma);
                Cycles::new((p.compile_cost.get() as f64 * factor) as u64)
            })
            .collect();

        let make_wake = kernel.create_wait_queue();
        let shared = Rc::new(MakeShared {
            finished_jobs: SimShared::new(&mut kernel, "pmake.finished_jobs", 0),
            make_wake,
            job_done: SimShared::new(&mut kernel, "pmake.job_done", vec![false; p.files as usize]),
        });
        kernel.spawn(
            MakeProcess {
                shared: shared.clone(),
                costs,
                jobs: p.jobs,
                next_file: 0,
                retry: Vec::new(),
                active: Vec::new(),
                fork_cost: p.fork_cost,
                parse_cost: p.parse_cost,
                link_steps: p.link_steps,
                link_cost: p.link_cost,
                phase: MakePhase::Parse,
                parsed: false,
            },
            SpawnOptions::new().kill_exempt(),
        );

        let outcome = kernel.run();
        assert_eq!(
            outcome,
            asym_kernel::RunOutcome::AllDone,
            "build did not complete"
        );
        assert_eq!(shared.finished_jobs.peek(|c| *c), u64::from(p.files));
        RunResult::new(kernel.now().as_secs_f64())
            .with_extra("lost_workers", kernel.stats().threads_killed as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_core::AsymConfig;
    use asym_kernel::SchedPolicy;

    fn quick(config: AsymConfig, seed: u64) -> f64 {
        Pmake::new()
            .files(120)
            .run(&RunSetup::new(config, SchedPolicy::os_default(), seed))
            .value
    }

    #[test]
    fn build_scales_with_compute_power() {
        let fast = quick(AsymConfig::new(4, 0, 1), 1);
        let slow = quick(AsymConfig::new(0, 4, 8), 1);
        assert!(slow > 5.0 * fast, "fast {fast} slow {slow}");
    }

    #[test]
    fn stable_across_runs() {
        // Short-lived exec-balanced compile jobs make the build
        // self-balancing; the residual wobble is the serial parse/link
        // placement (present on real hardware too).
        // Full-size tree: the serial fraction is realistic and the many
        // short jobs average out.
        let runs: Vec<f64> = (0..4)
            .map(|s| {
                Pmake::new()
                    .run(&RunSetup::new(
                        AsymConfig::new(2, 2, 8),
                        SchedPolicy::os_default(),
                        s,
                    ))
                    .value
            })
            .collect();
        let mean = runs.iter().sum::<f64>() / runs.len() as f64;
        let spread = (runs.iter().cloned().fold(f64::MIN, f64::max)
            - runs.iter().cloned().fold(f64::MAX, f64::min))
            / mean;
        assert!(spread < 0.20, "PMAKE should be near-stable: {runs:?}");
    }

    #[test]
    fn one_fast_core_helps() {
        // 1f-3s/8 (power 1.375) beats 0f-4s/4 (power 1.0) on average:
        // the fast core soaks up compile jobs on demand.
        let avg = |f, s, sc| {
            (0..3)
                .map(|seed| quick(AsymConfig::new(f, s, sc), seed))
                .sum::<f64>()
                / 3.0
        };
        let one_fast = avg(1, 3, 8);
        let all_slow4 = avg(0, 4, 4);
        assert!(one_fast < all_slow4, "{one_fast} vs {all_slow4}");
    }

    #[test]
    fn respects_job_limit() {
        // With -j1 the build serializes: runtime ≈ total work on one core.
        let mut p1 = Pmake::new().files(160);
        p1.params.jobs = 1;
        let mut p4 = Pmake::new().files(160);
        p4.params.jobs = 4;
        let setup = RunSetup::new(AsymConfig::new(4, 0, 1), SchedPolicy::os_default(), 1);
        let t1 = p1.run(&setup).value;
        let t4 = p4.run(&setup).value;
        assert!(t1 > 2.5 * t4, "-j1 {t1} vs -j4 {t4}");
    }

    #[test]
    fn tree_costs_are_run_invariant() {
        // Different run seeds, same tree: total work identical, so
        // symmetric runtimes match almost exactly.
        let a = quick(AsymConfig::new(4, 0, 1), 10);
        let b = quick(AsymConfig::new(4, 0, 1), 99);
        assert!((a / b - 1.0).abs() < 0.02, "{a} vs {b}");
    }
}
