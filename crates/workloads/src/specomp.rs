//! SPEC OMP model (§3.5): ten OpenMP benchmarks with per-benchmark loop
//! structure, run on the `asym-omp` runtime.
//!
//! The paper's findings, all of which this model reproduces:
//!
//! * most loops are **statically** parallelized — equal iteration shares
//!   on unequal cores make the slowest core the pacer, so `2f-2s/8` runs
//!   like `0f-4s/8` despite having 4.5× its compute power;
//! * `galgel` uses **guided** scheduling and `nowait` on its three
//!   hottest regions; guided without speed awareness lets a slow core
//!   grab a huge early chunk, which can leave `2f-2s/8` *worse* than
//!   `0f-4s/4`;
//! * `ammp` has seven large tasks of about seven fat iterations each —
//!   whichever threads draw two iterations pace the loop, so its static
//!   mapping is luck-sensitive;
//! * switching every loop to **dynamic scheduling with large chunks**
//!   (the paper's application fix, Figure 8(b)) restores scaling: the
//!   asymmetric configurations land far above the midpoint of all-fast
//!   and all-slow.
//!
//! Runtimes are scaled down ~20× from the paper's (documented in
//! EXPERIMENTS.md); the *shape* across configurations is the result.

use asym_core::{Direction, RunResult, RunSetup, Workload};
use asym_omp::{run_program_tolerant, LoopSchedule, OmpProgram, Region, DEFAULT_DISPATCH_OVERHEAD};
use asym_sim::Cycles;

/// Names of the modelled SPEC OMP (medium) benchmarks, in the paper's
/// Figure 8 order. `gafort` is omitted, as in the paper ("not shown
/// because of compilation issues").
pub const BENCHMARK_NAMES: [&str; 10] = [
    "wupwise", "swim", "mgrid", "applu", "galgel", "equake", "apsi", "fma3d", "art", "ammp",
];

/// Loop-schedule variant of a benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OmpVariant {
    /// The benchmarks' own directives (mostly static; guided/nowait where
    /// the paper says so) — Figure 8(a).
    Unmodified,
    /// Every loop switched to dynamic scheduling with large chunks — the
    /// paper's source modification, Figure 8(b).
    DynamicChunked,
}

/// One SPEC OMP benchmark run with a team of `threads` workers.
#[derive(Debug, Clone)]
pub struct SpecOmp {
    /// Benchmark name (one of [`BENCHMARK_NAMES`]).
    pub benchmark: &'static str,
    /// Directive variant.
    pub variant: OmpVariant,
    /// Team size (the paper uses one thread per processor: 4).
    pub threads: usize,
    /// Work multiplier for quick test runs (1.0 = calibrated scale).
    pub work_scale: f64,
}

impl SpecOmp {
    /// The named benchmark with unmodified directives and 4 threads.
    ///
    /// # Panics
    ///
    /// Panics if `benchmark` is not one of [`BENCHMARK_NAMES`].
    pub fn new(benchmark: &str) -> Self {
        let benchmark = BENCHMARK_NAMES
            .iter()
            .find(|b| **b == benchmark)
            .unwrap_or_else(|| panic!("unknown SPEC OMP benchmark {benchmark:?}"));
        SpecOmp {
            benchmark,
            variant: OmpVariant::Unmodified,
            threads: 4,
            work_scale: 1.0,
        }
    }

    /// Switches to the dynamic-chunked variant.
    pub fn variant(mut self, variant: OmpVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Scales total work (for fast tests).
    pub fn work_scale(mut self, scale: f64) -> Self {
        self.work_scale = scale;
        self
    }

    /// All ten benchmarks in Figure 8 order.
    pub fn all() -> Vec<SpecOmp> {
        BENCHMARK_NAMES.iter().map(|b| SpecOmp::new(b)).collect()
    }

    /// Builds the benchmark's program for this variant.
    pub fn program(&self) -> OmpProgram {
        let p = build_profile(self.benchmark, self.work_scale);
        match self.variant {
            OmpVariant::Unmodified => p,
            OmpVariant::DynamicChunked => p.with_dynamic_loops(self.threads, 16),
        }
    }
}

/// Shorthand: a parallel-for region with `iters` iterations of `micros`
/// microseconds each.
fn pfor(iters: u64, micros: f64, schedule: LoopSchedule) -> Region {
    Region::parallel_for(iters, Cycles::from_micros_at_full_speed(micros), schedule)
}

fn pfor_nowait(iters: u64, micros: f64, schedule: LoopSchedule) -> Region {
    Region::parallel_for_nowait(iters, Cycles::from_micros_at_full_speed(micros), schedule)
}

fn serial(micros: f64) -> Region {
    Region::serial(Cycles::from_micros_at_full_speed(micros))
}

/// Per-benchmark loop profiles. Iteration counts, costs, and schedules
/// follow the structural descriptions in §3.5; total work is calibrated
/// so the 4f-0s runtimes land at roughly 1/20 of Figure 8(a)'s.
fn build_profile(name: &str, scale: f64) -> OmpProgram {
    let s = |micros: f64| micros * scale;
    let st = LoopSchedule::Static;
    match name {
        // Dense-linear-algebra style: a few fat static loops per step.
        "wupwise" => OmpProgram::builder()
            .region(serial(s(400.0)))
            .region(pfor(512, s(120.0), st))
            .region(pfor(512, s(140.0), st))
            .time_steps(60)
            .build(),
        // Shallow-water: three big stencil loops per step.
        "swim" => OmpProgram::builder()
            .region(pfor(800, s(160.0), st))
            .region(pfor(800, s(160.0), st))
            .region(pfor(800, s(130.0), st))
            .time_steps(60)
            .build(),
        // Multigrid: nested resolutions, several mid-size loops.
        "mgrid" => OmpProgram::builder()
            .region(pfor(600, s(150.0), st))
            .region(pfor(300, s(150.0), st))
            .region(pfor(150, s(160.0), st))
            .region(pfor(600, s(150.0), st))
            .time_steps(80)
            .build(),
        // SSOR solver: static loops plus a small serial pivot.
        "applu" => OmpProgram::builder()
            .region(serial(s(600.0)))
            .region(pfor(500, s(170.0), st))
            .region(pfor(500, s(170.0), st))
            .time_steps(70)
            .build(),
        // 30 parallel regions with short bodies; the three hottest are
        // guided + nowait (the paper's description, verbatim).
        "galgel" => {
            let mut b = OmpProgram::builder();
            for i in 0..30u64 {
                let hot = i % 10 == 0; // 3 of 30 regions
                let region = if hot {
                    pfor_nowait(160, s(55.0), LoopSchedule::Guided { min_chunk: 1 })
                } else {
                    pfor(40, s(45.0), st)
                };
                b = b.region(region);
            }
            b.time_steps(55).build()
        }
        // Earthquake: one big static loop plus a serial integration step.
        "equake" => OmpProgram::builder()
            .region(serial(s(900.0)))
            .region(pfor(700, s(140.0), st))
            .time_steps(55)
            .build(),
        // Pollutant transport: static loops, moderate sizes.
        "apsi" => OmpProgram::builder()
            .region(pfor(450, s(130.0), st))
            .region(pfor(450, s(130.0), st))
            .region(serial(s(300.0)))
            .time_steps(65)
            .build(),
        // Crash simulation: many small static regions → barrier-heavy.
        "fma3d" => {
            let mut b = OmpProgram::builder();
            for _ in 0..12 {
                b = b.region(pfor(120, s(90.0), st));
            }
            b.time_steps(90).build()
        }
        // Neural-net: two long static loops.
        "art" => OmpProgram::builder()
            .region(pfor(1200, s(220.0), st))
            .region(pfor(1200, s(200.0), st))
            .time_steps(50)
            .build(),
        // Molecular dynamics: seven large tasks, each a parallel for of
        // ~6 fat iterations (the paper: OpenMP "mapped two iterations
        // each to the two fast processors, and one iteration each to the
        // two slow processors" — a (2,2,1,1) static split whose luck
        // depends on which ranks sit on slow cores).
        "ammp" => {
            let mut b = OmpProgram::builder();
            for _ in 0..7 {
                b = b.region(pfor(6, s(12_800.0), st));
            }
            b.time_steps(40).build()
        }
        other => panic!("unknown SPEC OMP benchmark {other:?}"),
    }
}

impl Workload for SpecOmp {
    fn name(&self) -> &str {
        self.benchmark
    }

    fn spec_key(&self) -> String {
        format!("SPEC-OMP {:?}", self)
    }

    fn unit(&self) -> &str {
        "seconds"
    }

    fn direction(&self) -> Direction {
        Direction::LowerIsBetter
    }

    fn run(&self, setup: &RunSetup) -> RunResult {
        let run = run_program_tolerant(
            setup.config.machine(),
            setup.policy,
            setup.seed,
            self.program(),
            self.threads,
            DEFAULT_DISPATCH_OVERHEAD,
        );
        RunResult::new(run.elapsed.as_secs_f64())
            .with_extra("lost_workers", run.lost_workers as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_core::AsymConfig;
    use asym_kernel::SchedPolicy;

    fn quick(b: &str, variant: OmpVariant, config: AsymConfig, seed: u64) -> f64 {
        SpecOmp::new(b)
            .variant(variant)
            .work_scale(0.25)
            .run(&RunSetup::new(config, SchedPolicy::os_default(), seed))
            .value
    }

    #[test]
    fn all_profiles_build() {
        for b in SpecOmp::all() {
            let p = b.program();
            assert!(p.total_work().get() > 0, "{} has no work", b.benchmark);
        }
    }

    #[test]
    fn static_benchmarks_pace_at_slowest_core() {
        // swim (pure static): 2f-2s/8 runtime within 25% of 0f-4s/8.
        let asym = quick("swim", OmpVariant::Unmodified, AsymConfig::new(2, 2, 8), 1);
        let all_slow = quick("swim", OmpVariant::Unmodified, AsymConfig::new(0, 4, 8), 1);
        let fast = quick("swim", OmpVariant::Unmodified, AsymConfig::new(4, 0, 1), 1);
        assert!(
            asym > 0.75 * all_slow,
            "static pacing missing: asym {asym} vs slow {all_slow}"
        );
        assert!(asym > 4.0 * fast, "asym {asym} vs fast {fast}");
    }

    #[test]
    fn dynamic_variant_restores_scaling() {
        let asym_static = quick("swim", OmpVariant::Unmodified, AsymConfig::new(2, 2, 8), 1);
        let asym_dyn = quick(
            "swim",
            OmpVariant::DynamicChunked,
            AsymConfig::new(2, 2, 8),
            1,
        );
        let fast_dyn = quick(
            "swim",
            OmpVariant::DynamicChunked,
            AsymConfig::new(4, 0, 1),
            1,
        );
        let slow_dyn = quick(
            "swim",
            OmpVariant::DynamicChunked,
            AsymConfig::new(0, 4, 8),
            1,
        );
        assert!(
            asym_dyn < 0.5 * asym_static,
            "dynamic should be much faster on asym: {asym_dyn} vs {asym_static}"
        );
        // Better than the midpoint of all-fast and all-slow (Figure 8(b)).
        let midpoint = (fast_dyn + slow_dyn) / 2.0;
        assert!(asym_dyn < midpoint, "{asym_dyn} vs midpoint {midpoint}");
    }

    #[test]
    fn ammp_static_mapping_is_luck_sensitive() {
        // 7 iterations over 4 threads: the 2-iteration threads pace the
        // loop; which threads sit on slow cores varies per seed.
        let runs: Vec<f64> = (0..6)
            .map(|s| quick("ammp", OmpVariant::Unmodified, AsymConfig::new(2, 2, 8), s))
            .collect();
        let mean = runs.iter().sum::<f64>() / runs.len() as f64;
        let spread = (runs.iter().cloned().fold(f64::MIN, f64::max)
            - runs.iter().cloned().fold(f64::MAX, f64::min))
            / mean;
        // ammp is the benchmark the paper singles out as mapping-luck
        // dependent; some spread is expected (placement decides which
        // ranks run slow).
        assert!(spread >= 0.0); // structural smoke test; magnitude checked in figures
        let fast = quick("ammp", OmpVariant::Unmodified, AsymConfig::new(4, 0, 1), 1);
        assert!(mean > fast, "asym must be slower than all-fast");
    }

    #[test]
    fn symmetric_runs_are_stable() {
        let runs: Vec<f64> = (0..3)
            .map(|s| quick("mgrid", OmpVariant::Unmodified, AsymConfig::new(4, 0, 1), s))
            .collect();
        let mean = runs.iter().sum::<f64>() / runs.len() as f64;
        for r in &runs {
            assert!((r / mean - 1.0).abs() < 0.02, "{runs:?}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown SPEC OMP benchmark")]
    fn unknown_benchmark_rejected() {
        let _ = SpecOmp::new("gafort");
    }
}
