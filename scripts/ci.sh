#!/usr/bin/env bash
# The repository's CI gate: formatting, lints, tests, and the
# concurrency-checker smoke. Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> asym-check --fixtures (detectors must fire)"
cargo run -q --release -p asym-bench --bin asym_check -- --fixtures

echo "==> asym-check --quick (1f-3s/8 smoke sweep must be clean)"
cargo run -q --release -p asym-bench --bin asym_check -- --quick

echo "==> extra_fault_sweep --quick (faulted smoke sweep: classified, clean, deterministic)"
cargo run -q --release -p asym-bench --bin extra_fault_sweep -- --quick > /dev/null

echo "==> extra_absorption --quick (differential stock-vs-aware smoke: paired, panic-free, kills accounted)"
cargo run -q --release -p asym-bench --bin extra_absorption -- --quick > /dev/null

echo "CI OK"
