#!/usr/bin/env bash
# The repository's CI gate: formatting, lints, tests, and the
# concurrency-checker smoke. Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> asym-check --fixtures (detectors must fire, incl. race/lock-set/ranking fixtures)"
cargo run -q --release -p asym-bench --bin asym_check -- --fixtures

echo "==> asym-check --quick (1f-3s/8 smoke sweep must be clean)"
cargo run -q --release -p asym-bench --bin asym_check -- --quick

echo "==> asym-check --races --quick (happens-before race/lock-set/ranking pass must be clean)"
cargo run -q --release -p asym-bench --bin asym_check -- --races --quick

echo "==> extra_fault_sweep --quick (faulted smoke sweep: classified, clean, deterministic)"
cargo run -q --release -p asym-bench --bin extra_fault_sweep -- --quick > /dev/null

echo "==> extra_absorption --quick (differential stock-vs-aware smoke: paired, panic-free, kills accounted)"
cargo run -q --release -p asym-bench --bin extra_absorption -- --quick > /dev/null

echo "==> asym_profile (observability smoke: one SPECjbb cell + Perfetto export)"
cargo run -q --release -p asym-bench --bin asym_profile -- \
  --workload SPECjbb --config 2f-2s/4 --policy stock --seed 42 \
  --perfetto=ASYM_profile_trace.json > ASYM_profile.txt
for needle in "util" "fast idle while slow runnable" "migrations" "scheduler latency" "run quantum"; do
  grep -q "$needle" ASYM_profile.txt || { echo "FAIL: asym_profile report lacks '$needle'"; exit 1; }
done

echo "==> asym_diff (differential smoke: Apache stock vs asym-aware, same seed, twice)"
cargo run -q --release -p asym-bench --bin asym_diff -- \
  --workload Apache --config 4f-4s/8 --seed 1 \
  --perfetto=ASYM_diff_trace.json > ASYM_diff.txt
cargo run -q --release -p asym-bench --bin asym_diff -- \
  --workload Apache --config 4f-4s/8 --seed 1 > ASYM_diff_rerun.txt
cmp ASYM_diff.txt ASYM_diff_rerun.txt || { echo "FAIL: asym_diff report not byte-identical across invocations"; exit 1; }
grep -q "residual +0ns" ASYM_diff.txt || { echo "FAIL: asym_diff attribution does not tile the wall delta"; exit 1; }
if command -v python3 > /dev/null; then
  python3 - <<'EOF'
import json
with open("ASYM_diff_trace.json") as f:
    trace = json.load(f)
ev = trace["traceEvents"]
assert ev, "diff Perfetto export has no traceEvents"
assert {e["ph"] for e in ev} <= {"M", "X", "i", "C", "s", "f"}, "unexpected event phase"
pids = {e["pid"] for e in ev if e["ph"] == "M" and e["name"] == "process_name"}
assert len(pids) == 16, f"expected 16 core processes (two 8-core runs), got {len(pids)}"
counters = {(e["pid"], e["name"]) for e in ev if e["ph"] == "C"}
for pid in pids:
    assert (pid, "speed_pmy") in counters, f"pid {pid} lacks a speed counter track"
    assert (pid, "runnable") in counters, f"pid {pid} lacks a runnable counter track"
starts = sorted(e["id"] for e in ev if e["ph"] == "s")
finishes = sorted(e["id"] for e in ev if e["ph"] == "f")
assert starts, "diff export has no flow events"
assert starts == finishes, "flow starts and finishes do not pair up"
print(f"   ASYM_diff_trace.json OK: {len(ev)} events, {len(pids)} core tracks, "
      f"{len(starts)} flow pairs")
EOF
fi
rm -f ASYM_diff_rerun.txt

echo "==> asym_soak --quick --json (chaos soak: randomized environment x fault campaigns)"
cargo run -q --release -p asym-bench --bin asym_soak -- --quick --json > /dev/null
test -s SOAK_report.json || { echo "FAIL: SOAK_report.json missing or empty"; exit 1; }

echo "==> asym_sweep mini extra_dynamic extra_tournament --quick --check --jobs 2 --json (driver smoke + dynamic regimes + policy tournament + per-cell concurrency check)"
cargo run -q --release -p asym-bench --bin asym_sweep -- mini extra_dynamic extra_tournament --quick --check --jobs 2 --json > /dev/null

# The structured report must exist, be well-formed, contain no panicked
# or deadlocked cells, and carry finite per-cell profile metrics; the
# Perfetto export from the profile smoke must parse as trace-event JSON.
test -s BENCH_sweep.json || { echo "FAIL: BENCH_sweep.json missing or empty"; exit 1; }
if command -v python3 > /dev/null; then
  python3 - <<'EOF'
import json, math, sys
with open("ASYM_profile_trace.json") as f:
    trace = json.load(f)
assert trace.get("traceEvents"), "Perfetto export has no traceEvents"
assert {e["ph"] for e in trace["traceEvents"]} <= {"M", "X", "i", "C", "s", "f"}, "unexpected event phase"
assert any(e["ph"] == "C" for e in trace["traceEvents"]), "no counter track events"
print(f"   ASYM_profile_trace.json OK: {len(trace['traceEvents'])} trace events")

with open("BENCH_sweep.json") as f:
    report = json.load(f)
for field in ("name", "jobs", "wall_ms", "cells_wall_ms", "speedup", "memoized_cells", "cells"):
    assert field in report, f"missing field {field!r}"
assert report["cells"], "no cells in report"
bad = [c for c in report["cells"] if c["class"] in ("panicked", "deadlock")]
assert not bad, f"{len(bad)} panicked/deadlocked cell(s): {bad[:3]}"
with_metrics = 0
for c in report["cells"]:
    assert "memoized" in c, "cell lacks 'memoized' flag"
    m = c.get("metrics")
    if m is None:
        continue
    with_metrics += 1
    for field in ("kernels", "sim_ns", "busy_ns", "idle_ns", "offline_ns",
                  "utilization_pct", "fast_idle_slow_runnable_ns", "migrations",
                  "migration_wait_ns", "preemptions", "sync_wait_ns",
                  "contended_acquires", "speed_changes", "reranks",
                  "tracking_lag_ns", "sched_latency", "run_quantum"):
        assert field in m, f"cell metrics lack {field!r}"
        v = m[field]
        if isinstance(v, (int, float)):
            assert math.isfinite(v), f"non-finite metrics field {field!r}: {v}"
    for hist in ("sched_latency", "run_quantum"):
        for field in ("count", "mean_ns", "max_ns", "p50_ns", "p99_ns", "p999_ns"):
            assert field in m[hist], f"{hist} lacks percentile key {field!r}"
assert with_metrics, "no cell carries profile metrics despite --json"

# The dynamic-environment cells must be present and actually disturbed:
# their regimes drive mid-run speed changes the kernel re-ranks against.
dynamic = [c for c in report["cells"] if c["spec"].startswith("dynamic/")]
assert dynamic, "no dynamic-environment cells in the sweep report"
env_changes = sum((c.get("metrics") or {}).get("speed_changes", 0) for c in dynamic)
assert env_changes > 0, "dynamic regimes produced no speed changes"
diffed = [c for c in dynamic if c.get("diff")]
assert diffed, "no differential cell carries diff attribution"
for c in diffed:
    for field in ("wall_delta_ns", "busy_delta_ns", "idle_delta_ns", "offline_delta_ns",
                  "fast_idle_delta_ns", "migrations_delta", "migration_wait_delta_ns",
                  "sync_wait_delta_ns", "sched_wait_delta_ns", "sched_p99_delta_ns",
                  "tracking_lag_delta_ns"):
        assert field in c["diff"], f"differential cell diff lacks {field!r}"
print(f"   dynamic cells OK: {len(dynamic)} cells ({len(diffed)} with diff attribution), "
      f"{env_changes} environmental speed changes")

# The policy tournament must field every registered policy, with every
# cell completed and lint-clean (the per-cell --check already failed the
# sweep on any violation; re-assert it structurally here).
REGISTRY = ["stock", "asym-aware", "vrt-fair", "static-prio",
            "speed-slice", "steal-aware", "temp-aware"]
tourn = [c for c in report["cells"] if c["spec"].startswith("tourn/")]
assert tourn, "no tournament cells in the sweep report"
by_policy = {}
for c in tourn:
    by_policy.setdefault(c["policy"], []).append(c)
missing = [p for p in REGISTRY if p not in by_policy]
assert not missing, f"tournament missing registered policies: {missing}"
for p, cells in sorted(by_policy.items()):
    incomplete = [c["spec"] for c in cells if c["class"] != "completed"]
    assert not incomplete, f"policy {p!r} has incomplete cells: {incomplete[:3]}"
    dirty = [c["spec"] for c in cells if c.get("violations")]
    assert not dirty, f"policy {p!r} has analysis violations: {dirty[:3]}"
print(f"   tournament cells OK: {len(tourn)} cells across "
      f"{len(by_policy)} policies, all completed and violation-free")

with open("SOAK_report.json") as f:
    soak = json.load(f)
assert soak["ok"] is True, f"soak invariants broke: {soak}"
assert soak["panicked"] == 0 and soak["unsettled"] == 0, f"soak degraded: {soak}"
assert soak["campaigns"], "soak report has no campaigns"
print(f"   SOAK_report.json OK: {len(soak['campaigns'])} campaign(s), all settled")
print(f"   BENCH_sweep.json OK: {len(report['cells'])} cells "
      f"({with_metrics} with metrics, {report['memoized_cells']} memoized), "
      f"{report['wall_ms']:.0f} ms wall, {report['cells_wall_ms']:.0f} ms "
      f"serial-equivalent, {report['speedup']:.2f}x on {report['jobs']} host threads")
EOF
else
  # Fallback structural greps when python3 is unavailable.
  grep -q '"cells": \[' BENCH_sweep.json || { echo "FAIL: malformed BENCH_sweep.json"; exit 1; }
  grep -q '"class": "panicked"' BENCH_sweep.json && { echo "FAIL: panicked cell in sweep"; exit 1; }
  grep -q '"class": "deadlock"' BENCH_sweep.json && { echo "FAIL: deadlocked cell in sweep"; exit 1; }
  echo "   BENCH_sweep.json OK (grep checks)"
fi

echo "==> extra_scale --quick cache double-run (warm restore: >=90% hits, bit-identical cells)"
CACHE_DIR="$(mktemp -d)"
cargo run -q --release -p asym-bench --bin extra_scale -- \
  --quick --cache "$CACHE_DIR" --json=CACHE_cold.json > /dev/null
cargo run -q --release -p asym-bench --bin extra_scale -- \
  --quick --cache "$CACHE_DIR" --json=CACHE_warm.json > /dev/null
if command -v python3 > /dev/null; then
  python3 - <<'EOF'
import json
cold = json.load(open("CACHE_cold.json"))
warm = json.load(open("CACHE_warm.json"))
stats = warm["cache"]
assert stats is not None, "warm run reports no cache stats despite --cache"
probes = stats["hits"] + stats["misses"]
assert probes > 0, "warm run probed no cells"
rate = stats["hits"] / probes
assert rate >= 0.9, f"warm hit rate {rate:.2%} below 90%: {stats}"
assert stats["invalidations"] == 0, f"warm run invalidated entries: {stats}"

def stable(report):
    cells = []
    for c in report["cells"]:
        c = dict(c)
        c.pop("wall_ms", None)   # host timing is volatile
        c.pop("cached", None)    # provenance differs cold vs warm
        cells.append(c)
    return cells

a, b = stable(cold), stable(warm)
assert a == b, "warm-cache cells are not bit-identical to the cold run"
print(f"   cell cache OK: {len(a)} cells, {stats['hits']} hits "
      f"({rate:.0%}), warm restore bit-identical")
EOF
else
  grep -q '"misses":0' CACHE_warm.json || { echo "FAIL: warm cache run missed"; exit 1; }
  grep -q '"invalidations":0' CACHE_warm.json || { echo "FAIL: warm cache run invalidated"; exit 1; }
  echo "   cell cache OK (grep checks)"
fi
rm -rf "$CACHE_DIR" CACHE_cold.json CACHE_warm.json

echo "CI OK"
