#!/usr/bin/env bash
# The repository's CI gate: formatting, lints, tests, and the
# concurrency-checker smoke. Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> asym-check --fixtures (detectors must fire)"
cargo run -q --release -p asym-bench --bin asym_check -- --fixtures

echo "==> asym-check --quick (1f-3s/8 smoke sweep must be clean)"
cargo run -q --release -p asym-bench --bin asym_check -- --quick

echo "==> extra_fault_sweep --quick (faulted smoke sweep: classified, clean, deterministic)"
cargo run -q --release -p asym-bench --bin extra_fault_sweep -- --quick > /dev/null

echo "==> extra_absorption --quick (differential stock-vs-aware smoke: paired, panic-free, kills accounted)"
cargo run -q --release -p asym-bench --bin extra_absorption -- --quick > /dev/null

echo "==> asym_sweep --quick --jobs 2 --json (unified driver smoke: mini sweep on 2 host threads)"
cargo run -q --release -p asym-bench --bin asym_sweep -- --quick --jobs 2 --json > /dev/null

# The structured report must exist, be well-formed, and contain no
# panicked or deadlocked cells.
test -s BENCH_sweep.json || { echo "FAIL: BENCH_sweep.json missing or empty"; exit 1; }
if command -v python3 > /dev/null; then
  python3 - <<'EOF'
import json, sys
with open("BENCH_sweep.json") as f:
    report = json.load(f)
for field in ("name", "jobs", "wall_ms", "cells_wall_ms", "speedup", "cells"):
    assert field in report, f"missing field {field!r}"
assert report["cells"], "no cells in report"
bad = [c for c in report["cells"] if c["class"] in ("panicked", "deadlock")]
assert not bad, f"{len(bad)} panicked/deadlocked cell(s): {bad[:3]}"
print(f"   BENCH_sweep.json OK: {len(report['cells'])} cells, "
      f"{report['wall_ms']:.0f} ms wall, {report['cells_wall_ms']:.0f} ms "
      f"serial-equivalent, {report['speedup']:.2f}x on {report['jobs']} host threads")
EOF
else
  # Fallback structural greps when python3 is unavailable.
  grep -q '"cells": \[' BENCH_sweep.json || { echo "FAIL: malformed BENCH_sweep.json"; exit 1; }
  grep -q '"class": "panicked"' BENCH_sweep.json && { echo "FAIL: panicked cell in sweep"; exit 1; }
  grep -q '"class": "deadlock"' BENCH_sweep.json && { echo "FAIL: deadlocked cell in sweep"; exit 1; }
  echo "   BENCH_sweep.json OK (grep checks)"
fi

echo "CI OK"
